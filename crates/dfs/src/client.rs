//! The `Dfs` facade: a whole HDFS instance plus its client operations.
//!
//! Owns the [`NameNode`] and every [`DataNode`], and implements the
//! user-visible data path with virtual-time charging against the cluster's
//! [`ClusterNet`]:
//!
//! * **pipeline writes** — client → DN1 → DN2 → DN3, store-and-forward,
//!   each replica hitting its node's disk (the write path students observe
//!   when staging the Airline data);
//! * **locality-aware reads** — closest replica first, checksum-verified,
//!   falling back across replicas on corruption;
//! * **`copyFromLocal` / `copyToLocal`** — the commands assignment 2 has
//!   students place around their MapReduce invocations;
//! * the **daemon protocol** — heartbeats, block reports, replication
//!   commands — driven in rounds by [`Dfs::heartbeat_round`];
//! * **restart drills** — the fifteen-minute integrity-check story.

use std::collections::BTreeMap;

use bytes::Bytes;

use hl_cluster::network::ClusterNet;
use hl_cluster::node::{ClusterSpec, PerfProfile};
use hl_codec::CodecId;
use hl_common::prelude::*;
use hl_metrics::{MetricsRegistry, MetricsSnapshot};

use crate::block::{split_into_blocks, split_synthetic, BlockId, BlockPayload, FIRST_GEN_STAMP};
use crate::datanode::DataNode;
use crate::namenode::{DnCommand, NameNode};
use crate::placement::order_for_read;

/// A fault armed against the *next* pipeline write (chaos injection).
///
/// Store indices count replica stores across the whole write, in pipeline
/// order: block 0 targets first, then block 1's, and so on — so a plan's
/// `(fault, index)` pair deterministically names one replica transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineFault {
    /// The DataNode receiving store number `after_stores` crashes right
    /// after the bytes hit its disk: the client recovers the pipeline and
    /// a stale-genstamp replica is left on the dead node's disk.
    KillTarget {
        /// Zero-based index of the replica store that triggers the crash.
        after_stores: u32,
    },
    /// Store number `after_stores` succeeds but its ack never arrives
    /// within the write timeout: the client excludes the (perfectly live)
    /// DataNode, leaving a stale replica the next block report catches.
    SlowAck {
        /// Zero-based index of the replica store whose ack goes missing.
        after_stores: u32,
    },
    /// The writing client itself dies after `after_blocks` complete
    /// blocks: the file stays open until lease recovery finalizes it.
    CrashWriter {
        /// Number of blocks fully pipelined before the writer dies.
        after_blocks: u32,
    },
}

/// Per-client dead-node tracking with exponential backoff.
///
/// A node that fails a read gets banned for `base × 2^(strikes-1)` plus a
/// deterministic seeded jitter (FNV-1a of seed/node/strikes — no wall
/// clock, no global RNG), so readers route around sick DataNodes instead
/// of hammering them, and retry probes spread out instead of thundering.
#[derive(Debug, Clone)]
struct DeadNodes {
    entries: BTreeMap<NodeId, (u32, SimTime)>,
    base: SimDuration,
    seed: u64,
}

impl DeadNodes {
    fn new(seed: u64) -> Self {
        DeadNodes { entries: BTreeMap::new(), base: SimDuration::from_secs(30), seed }
    }

    fn is_banned(&self, now: SimTime, node: NodeId) -> bool {
        self.entries.get(&node).map(|&(_, until)| now < until).unwrap_or(false)
    }

    fn record_failure(&mut self, now: SimTime, node: NodeId) {
        let (strikes, until) = self.entries.entry(node).or_insert((0, SimTime::ZERO));
        *strikes = strikes.saturating_add(1);
        let exp = (*strikes - 1).min(6);
        let backoff = self.base * (1u64 << exp);
        let mut key = [0u8; 24];
        key[..8].copy_from_slice(&self.seed.to_le_bytes());
        key[8..16].copy_from_slice(&u64::from(node.0).to_le_bytes());
        key[16..].copy_from_slice(&u64::from(*strikes).to_le_bytes());
        let jitter = SimDuration::from_micros(fnv1a(&key) % self.base.as_micros().max(1));
        *until = now + backoff + jitter;
    }

    fn record_success(&mut self, node: NodeId) {
        self.entries.remove(&node);
    }
}

/// Completion times of one pipelined block write.
struct BlockFinish {
    /// When the slowest surviving replica finished ingesting.
    finish: SimTime,
    /// When the first replica finished (the client can stream on).
    first_hop_done: SimTime,
}

/// A value plus the virtual time its production completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timed<T> {
    /// The result.
    pub value: T,
    /// When the operation finished on the virtual clock.
    pub completed_at: SimTime,
}

/// Block metadata for input-split construction: `(block, len, holders)`.
pub type LocatedBlock = (BlockId, u64, Vec<NodeId>);

/// An HDFS instance: NameNode + DataNodes + client entry points.
#[derive(Debug, Clone)]
pub struct Dfs {
    /// The NameNode.
    pub namenode: NameNode,
    datanodes: BTreeMap<NodeId, DataNode>,
    disk_bw: u64,
    /// Chaos hook: a fault armed against the next pipeline write.
    armed_fault: Option<PipelineFault>,
    /// Client-side read failover state (banned DataNodes + backoff).
    dead_nodes: DeadNodes,
    /// Instruments for the "dfs.client" and "datanode.*" daemons
    /// (per-node I/O bytes, pipeline recoveries, read failovers).
    pub metrics: MetricsRegistry,
}

impl Dfs {
    /// Format a fresh DFS across every node of `spec` (each node runs a
    /// DataNode using the node's local disk). Safe mode exits immediately:
    /// a just-formatted namespace has no blocks to wait for.
    pub fn format(config: &Configuration, spec: &ClusterSpec) -> Result<Self> {
        let mut namenode = NameNode::new(config, spec.topology.clone())?;
        let mut datanodes = BTreeMap::new();
        for node in spec.topology.nodes() {
            let dn = DataNode::new(node, spec.node.disk_bytes);
            namenode.register_datanode(SimTime::ZERO, node, dn.free_bytes());
            datanodes.insert(node, dn);
        }
        namenode.safemode.force_leave();
        Ok(Dfs {
            namenode,
            datanodes,
            disk_bw: spec.node.disk_bw,
            armed_fault: None,
            dead_nodes: DeadNodes::new(0x4446_5343), // "DFSC"
            metrics: MetricsRegistry::new(),
        })
    }

    /// Arm a fault against the next pipeline write (chaos injection).
    /// One-shot: the write consumes it whether or not it fires.
    pub fn arm_pipeline_fault(&mut self, fault: PipelineFault) {
        self.armed_fault = Some(fault);
    }

    /// Reseed the client's dead-node jitter stream (chaos determinism:
    /// each seeded run gets its own, reproducible, backoff spread).
    pub fn set_client_seed(&mut self, seed: u64) {
        self.dead_nodes = DeadNodes::new(seed);
    }

    /// Access a DataNode (tests, fault injection).
    pub fn datanode(&self, node: NodeId) -> Option<&DataNode> {
        self.datanodes.get(&node)
    }

    /// Mutable DataNode access (fault injection).
    pub fn datanode_mut(&mut self, node: NodeId) -> Option<&mut DataNode> {
        self.datanodes.get_mut(&node)
    }

    /// All DataNode ids.
    pub fn datanode_ids(&self) -> Vec<NodeId> {
        self.datanodes.keys().copied().collect()
    }

    // ------------------------------------------------------------- writes

    fn write_payloads(
        &mut self,
        net: &mut ClusterNet,
        now: SimTime,
        path: &str,
        payloads: Vec<BlockPayload>,
        writer: Option<NodeId>,
        replication: Option<u32>,
    ) -> Result<Timed<()>> {
        // The lease holder: one writer identity per client write, named by
        // the writing node (an off-cluster upload writes as the client).
        let holder = match writer {
            Some(n) => format!("DFSClient_{n}"),
            None => "DFSClient_gateway".to_string(),
        };
        let fault = self.armed_fault.take();
        self.namenode.create_file(now, path, replication, None, &holder)?;
        let mut t = now;
        let mut file_done = now;
        let mut stores_done: u32 = 0;
        for (blocks_done, payload) in (0u32..).zip(payloads) {
            let len = payload.len();
            let (id, targets) = match self.namenode.add_block(t, path, len, writer) {
                Ok(ok) => ok,
                Err(e) => {
                    // Abandon the half-written file like a failed DFSClient.
                    let _ = self.namenode.delete(path, false);
                    return Err(e);
                }
            };
            // A crashed writer vanishes after allocating its next block but
            // before any DataNode confirms it: the file stays open under
            // its lease, trailing an unconfirmed block, until the
            // NameNode's lease recovery abandons the tail and closes the
            // file at the last consistent length.
            if let Some(PipelineFault::CrashWriter { after_blocks }) = fault {
                if blocks_done >= after_blocks {
                    return Err(HlError::DaemonDown(format!(
                        "writer of {path} crashed after {blocks_done} block(s)"
                    )));
                }
            }
            let finish = self.write_block_pipeline(
                net,
                t,
                path,
                id,
                targets,
                &payload,
                writer,
                fault,
                &mut stores_done,
            )?;
            // The client streams the next block as soon as the *first*
            // replica has ingested this one; downstream replication trails
            // in the background (its pipes still queue FIFO).
            t = finish.first_hop_done.max(t);
            file_done = finish.finish.max(file_done);
        }
        self.namenode.complete_file(path)?;
        Ok(Timed { value: (), completed_at: file_done })
    }

    /// Pipeline one block through its targets with recovery: a target that
    /// dies (or whose ack never arrives) is excluded, the block's
    /// generation stamp is bumped on the NameNode and on every surviving
    /// replica, and the write continues with the remaining pipeline —
    /// HDFS 1.x pipeline recovery. Only losing *every* target fails the
    /// block (and the write).
    #[allow(clippy::too_many_arguments)]
    fn write_block_pipeline(
        &mut self,
        net: &mut ClusterNet,
        t: SimTime,
        path: &str,
        id: BlockId,
        targets: Vec<NodeId>,
        payload: &BlockPayload,
        writer: Option<NodeId>,
        fault: Option<PipelineFault>,
        stores_done: &mut u32,
    ) -> Result<BlockFinish> {
        let len = payload.len();
        let mut gen_stamp = self.namenode.block(id).map(|b| b.gen_stamp).unwrap_or(FIRST_GEN_STAMP);
        // Pipeline write. HDFS streams 64 KB packets down the chain, so
        // the hops overlap almost completely: we charge every hop's
        // resource starting at the block's start time (FIFO queueing at
        // each pipe still serializes competing writers) and the block
        // completes when the slowest hop does. `writer = None` models
        // an off-cluster upload whose ingress link is not the
        // bottleneck (the login node's connection to the cluster
        // fabric), so the first hop is disk-only.
        let mut prev: Option<NodeId> = writer;
        let mut finish = t;
        let mut first_hop_done: Option<SimTime> = None;
        let mut survivors: Vec<NodeId> = Vec::new();
        let mut queue: std::collections::VecDeque<NodeId> = targets.into_iter().collect();
        while let Some(target) = queue.pop_front() {
            let net_done = match prev {
                Some(src) => net.transfer(t, src, target, len).end,
                None => t,
            };
            let disk_done = net.write_local_disk(t, target, len).end.max(net_done);
            let store_index = *stores_done;
            *stores_done += 1;
            // What happens to this replica store?
            let injected = match fault {
                Some(PipelineFault::KillTarget { after_stores }) if after_stores == store_index => {
                    // Bytes hit the disk, then the daemon dies: a stale
                    // replica is left behind for block reports to catch.
                    let _ = self.store_replica_stamped(target, id, payload.clone(), gen_stamp);
                    self.crash_datanode(target);
                    Some("killed")
                }
                Some(PipelineFault::SlowAck { after_stores }) if after_stores == store_index => {
                    // The store succeeds but its ack times out: the client
                    // must treat the (live) node as lost to this pipeline.
                    let _ = self.store_replica_stamped(target, id, payload.clone(), gen_stamp);
                    Some("ack timed out")
                }
                _ => None,
            };
            let stored = match injected {
                Some(_) => false,
                None => self.store_replica_stamped(target, id, payload.clone(), gen_stamp).is_ok(),
            };
            if stored {
                self.namenode.block_received(disk_done, target, id);
                survivors.push(target);
                prev = Some(target);
                finish = finish.max(disk_done);
                first_hop_done.get_or_insert(disk_done);
                continue;
            }
            // Pipeline recovery: exclude the failed target, bump the
            // generation stamp (journaled), and re-stamp the survivors so
            // the failed node's replica is the stale one.
            if queue.is_empty() && survivors.is_empty() {
                return Err(HlError::DaemonDown(format!(
                    "pipeline for {path} block {id} lost every target"
                )));
            }
            gen_stamp = self.namenode.bump_gen_stamp(t, path, id)?;
            self.metrics.incr("dfs.client", "pipeline.recoveries", 1);
            let mut lost_survivors = Vec::new();
            for &node in &survivors {
                let ok = self
                    .datanodes
                    .get_mut(&node)
                    .map(|dn| dn.update_gen_stamp(id, gen_stamp))
                    .unwrap_or(false);
                if !ok {
                    lost_survivors.push(node);
                }
            }
            survivors.retain(|n| !lost_survivors.contains(n));
            if queue.is_empty() && survivors.is_empty() {
                return Err(HlError::DaemonDown(format!(
                    "pipeline for {path} block {id} lost every target"
                )));
            }
        }
        if survivors.is_empty() {
            return Err(HlError::DaemonDown(format!(
                "pipeline for {path} block {id} lost every target"
            )));
        }
        Ok(BlockFinish { finish, first_hop_done: first_hop_done.unwrap_or(t) })
    }

    fn store_replica_stamped(
        &mut self,
        node: NodeId,
        id: BlockId,
        payload: BlockPayload,
        gen_stamp: u64,
    ) -> Result<()> {
        let len = payload.len();
        let dn = self
            .datanodes
            .get_mut(&node)
            .ok_or_else(|| HlError::DaemonDown(format!("datanode/{node}")))?;
        dn.store_block_stamped(id, payload, gen_stamp)?;
        let daemon = format!("datanode.{node}");
        self.metrics.incr(&daemon, "bytes.written", len);
        self.metrics.incr(&daemon, "blocks.written", 1);
        let free = dn.free_bytes();
        // Keep the NameNode's view of free space current.
        self.namenode.update_free_space(node, free);
        Ok(())
    }

    /// `hadoop fs -copyFromLocal`: write real bytes to a new file.
    pub fn put(
        &mut self,
        net: &mut ClusterNet,
        now: SimTime,
        path: &str,
        data: &[u8],
        writer: Option<NodeId>,
    ) -> Result<Timed<()>> {
        let block_size = self.namenode.default_block_size();
        let payloads = split_into_blocks(data, block_size);
        self.write_payloads(net, now, path, payloads, writer, None)
    }

    /// Stage a *synthetic* file of `len` bytes: full metadata, replication,
    /// and time accounting with no physical bytes (the 171 GB experiments).
    pub fn put_synthetic(
        &mut self,
        net: &mut ClusterNet,
        now: SimTime,
        path: &str,
        len: u64,
        writer: Option<NodeId>,
    ) -> Result<Timed<()>> {
        let block_size = self.namenode.default_block_size();
        let payloads = split_synthetic(len, block_size);
        self.write_payloads(net, now, path, payloads, writer, None)
    }

    /// Write with an explicit replication factor.
    pub fn put_with_replication(
        &mut self,
        net: &mut ClusterNet,
        now: SimTime,
        path: &str,
        data: &[u8],
        writer: Option<NodeId>,
        replication: u32,
    ) -> Result<Timed<()>> {
        let block_size = self.namenode.default_block_size();
        let payloads = split_into_blocks(data, block_size);
        self.write_payloads(net, now, path, payloads, writer, Some(replication))
    }

    /// Write `data` codec-framed: compress into `hl-codec` frames, pack
    /// *whole* frames into each block (cutting a block early rather than
    /// letting a frame straddle), pipeline the stored bytes, and journal
    /// the per-file codec flag. Because no frame crosses a block boundary,
    /// every block boundary is a sync-marker boundary — one `InputSplit`
    /// per block decodes independently, preserving locality.
    ///
    /// The DES charges the compression CPU on the writer (scaled by its
    /// [`PerfProfile`]) before the first byte enters the pipeline, and the
    /// pipeline/disk then move only the *stored* bytes — the CPU-vs-I/O
    /// tradeoff the codec exists to teach.
    pub fn put_compressed(
        &mut self,
        net: &mut ClusterNet,
        now: SimTime,
        path: &str,
        data: &[u8],
        writer: Option<NodeId>,
        codec: CodecId,
    ) -> Result<Timed<()>> {
        if codec == CodecId::Null {
            return self.put(net, now, path, data, writer);
        }
        let frames = hl_codec::compress_to_frames(codec, data);
        let block_size = self.namenode.default_block_size();
        let mut payloads = Vec::new();
        let mut current: Vec<u8> = Vec::new();
        for frame in &frames {
            if !current.is_empty() && (current.len() + frame.len()) as u64 > block_size {
                payloads.push(BlockPayload::real(std::mem::take(&mut current)));
            }
            current.extend_from_slice(frame);
        }
        if !current.is_empty() {
            payloads.push(BlockPayload::real(current));
        }
        let stored: u64 = payloads.iter().map(|p| p.len()).sum();
        let mut cost =
            SimDuration::for_transfer(data.len() as u64, hl_codec::COMPRESS_BYTES_PER_SEC);
        if let Some(w) = writer {
            cost = PerfProfile::scale_dur(cost, net.node_profile(w, now).cpu_mult);
        }
        self.record_codec_write(data.len() as u64, stored);
        let done = self.write_payloads(net, now + cost, path, payloads, writer, None)?;
        self.namenode.set_file_codec(path, codec)?;
        Ok(done)
    }

    /// The codec a file was stored with ([`CodecId::Null`] = plain bytes).
    pub fn file_codec(&self, path: &str) -> Result<CodecId> {
        Ok(self.namenode.namespace().file(path)?.codec)
    }

    /// Count a compressed write into the `dfs.client` codec instruments:
    /// logical bytes in, stored bytes out, and the running ratio gauge in
    /// basis points (10_000 = stored as many bytes as it was given).
    fn record_codec_write(&mut self, raw: u64, stored: u64) {
        self.metrics.incr("dfs.client", "codec.in_bytes", raw);
        self.metrics.incr("dfs.client", "codec.out_bytes", stored);
        if let Some(q) = stored.saturating_mul(10_000).checked_div(raw) {
            let bp = i64::try_from(q).unwrap_or(i64::MAX);
            self.metrics.set_gauge("dfs.client", "codec.ratio", bp);
        }
    }

    // -------------------------------------------------------------- reads

    /// Read one block from the best live replica, charging disk + network.
    /// Falls back across replicas on checksum corruption (reporting the
    /// bad replica to the NameNode, like a real DFSClient).
    pub fn read_block(
        &mut self,
        net: &mut ClusterNet,
        now: SimTime,
        id: BlockId,
        reader: Option<NodeId>,
        path_for_errors: &str,
    ) -> Result<Timed<Bytes>> {
        let holders = self.namenode.block_locations(id);
        let ordered = order_for_read(net.topology(), reader, &holders);
        // Failover ordering: banned (recently sick) nodes sink to the back
        // of the preference list rather than being skipped outright — if
        // every replica is banned, the least-recently-struck one still gets
        // probed instead of failing a readable block.
        let (healthy, banned): (Vec<NodeId>, Vec<NodeId>) =
            ordered.into_iter().partition(|h| !self.dead_nodes.is_banned(now, *h));
        let mut t = now;
        for holder in healthy.into_iter().chain(banned) {
            let alive = self.datanodes.get(&holder).map(|d| d.alive).unwrap_or(false);
            if !alive {
                self.metrics.incr("dfs.client", "read.failovers", 1);
                self.dead_nodes.record_failure(t, holder);
                continue;
            }
            match self.datanodes[&holder].read_block(id) {
                Ok(data) => {
                    self.dead_nodes.record_success(holder);
                    let len = data.len() as u64;
                    let daemon = format!("datanode.{holder}");
                    self.metrics.incr(&daemon, "bytes.read", len);
                    self.metrics.incr(&daemon, "blocks.read", 1);
                    let done = match reader {
                        Some(r) => net.read_remote(t, r, holder, len).end,
                        None => {
                            let disk = net.read_local_disk(t, holder, len);
                            // Off-cluster reader: egress through the NIC via
                            // a transfer to... no node; charge disk only.
                            disk.end
                        }
                    };
                    return Ok(Timed { value: data, completed_at: done });
                }
                Err(HlError::ChecksumMismatch { .. }) => {
                    self.metrics.incr("dfs.client", "read.corrupt_replicas", 1);
                    // Quarantine locally and tell the NameNode. The holder
                    // was alive a moment ago; skip quietly if it vanished.
                    let Some(dn) = self.datanodes.get_mut(&holder) else { continue };
                    dn.delete_block(id);
                    let report = self.datanodes[&holder].block_report();
                    self.namenode.process_block_report(t, holder, &report);
                    // Reading the corrupt copy still cost a disk pass.
                    t = net
                        .read_local_disk(
                            t,
                            holder,
                            self.namenode.block(id).map(|b| b.len).unwrap_or(0),
                        )
                        .end;
                }
                Err(_) => {
                    // IO-class failure: strike the node so later reads
                    // back off from it.
                    self.metrics.incr("dfs.client", "read.failovers", 1);
                    self.dead_nodes.record_failure(t, holder);
                    continue;
                }
            }
        }
        Err(HlError::MissingBlock { block_id: id.0, path: path_for_errors.to_string() })
    }

    /// `hadoop fs -cat` / `-copyToLocal`: read a whole file's bytes.
    /// Codec-framed files decode transparently — the caller always gets
    /// the logical (uncompressed) bytes, with the decode CPU charged on
    /// the reader after only the *stored* bytes crossed disk and NIC.
    pub fn read(
        &mut self,
        net: &mut ClusterNet,
        now: SimTime,
        path: &str,
        reader: Option<NodeId>,
    ) -> Result<Timed<Vec<u8>>> {
        let file = self.namenode.namespace().file(path)?.clone();
        let mut out = Vec::with_capacity(file.len as usize);
        let mut t = now;
        for id in &file.blocks {
            let block = self.read_block(net, t, *id, reader, path)?;
            out.extend_from_slice(&block.value);
            t = block.completed_at;
        }
        if file.codec != CodecId::Null {
            let raw = hl_codec::decompress_container(&out)?;
            let mut cost =
                SimDuration::for_transfer(raw.len() as u64, hl_codec::DECOMPRESS_BYTES_PER_SEC);
            if let Some(r) = reader {
                cost = PerfProfile::scale_dur(cost, net.node_profile(r, t).cpu_mult);
            }
            t += cost;
            out = raw;
        }
        Ok(Timed { value: out, completed_at: t })
    }

    /// Raw bytes of a block from any live replica, **uncharged** — used
    /// only by the MapReduce record reader to stitch the line that crosses
    /// a split boundary (a few bytes; the real read of the block is
    /// charged normally). Replicas that fail their checksums are skipped:
    /// serving rotted bytes here would feed a mapper corrupt input without
    /// any fault being raised (found by the chaos harness' ground-truth
    /// oracle).
    pub fn peek_block_bytes(&self, id: BlockId) -> Option<Bytes> {
        for (_, dn) in self.datanodes.iter().filter(|(_, d)| d.alive) {
            if let Some(crate::block::BlockPayload::Real { data, checksums }) = dn.payload(id) {
                if checksums.verify(data).is_none() {
                    return Some(data.clone());
                }
            }
        }
        None
    }

    /// Located blocks of a file, for MapReduce input splits.
    pub fn file_blocks(&self, path: &str) -> Result<Vec<LocatedBlock>> {
        let file = self.namenode.namespace().file(path)?;
        Ok(file
            .blocks
            .iter()
            .map(|&id| {
                let len = self.namenode.block(id).map(|b| b.len).unwrap_or(0);
                (id, len, self.namenode.block_locations(id))
            })
            .collect())
    }

    // ----------------------------------------------------------- protocol

    /// One protocol round at `now`: every live DataNode heartbeats
    /// (piggybacking its incremental block report — the received/deleted
    /// delta since the last round — so the NameNode hears about replica
    /// churn without waiting for a periodic full report), the heartbeat
    /// monitor sweeps, the replication monitor schedules copies, and those
    /// copies execute (charging the network). Returns executed commands.
    pub fn heartbeat_round(&mut self, net: &mut ClusterNet, now: SimTime) -> Vec<DnCommand> {
        let nodes: Vec<NodeId> = self.datanodes.keys().copied().collect();
        for node in nodes {
            if self.datanodes[&node].alive {
                let free = self.datanodes[&node].free_bytes();
                self.namenode.heartbeat(now, node, free);
                if let Some(delta) =
                    self.datanodes.get_mut(&node).and_then(|d| d.drain_incremental())
                {
                    self.namenode.process_incremental_report(now, node, &delta);
                }
            }
        }
        self.namenode.check_heartbeats(now);
        let work = self.namenode.replication_work(now, 64);
        self.apply_commands(net, now, &work);
        work
    }

    /// Execute NameNode commands against the DataNodes, with charging.
    pub fn apply_commands(&mut self, net: &mut ClusterNet, now: SimTime, commands: &[DnCommand]) {
        for cmd in commands {
            match *cmd {
                DnCommand::Replicate { block, from, to } => {
                    // The copy carries the source replica's generation
                    // stamp — stamping it FIRST_GEN would make every
                    // re-replicated copy of a recovered block look stale
                    // at its next block report, an invalidation churn loop.
                    let source =
                        self.datanodes.get(&from).filter(|d| d.alive).and_then(|d| {
                            Some((d.payload(block).cloned()?, d.gen_stamp_of(block)?))
                        });
                    match source {
                        Some((p, gs)) => {
                            let len = p.len();
                            let read = net.read_local_disk(now, from, len);
                            let xfer = net.transfer(read.end, from, to, len);
                            let write = net.write_local_disk(xfer.end, to, len);
                            let stored = self
                                .datanodes
                                .get_mut(&to)
                                .map(|d| d.store_block_stamped(block, p, gs).is_ok())
                                .unwrap_or(false);
                            if stored {
                                let daemon = format!("datanode.{to}");
                                self.metrics.incr(&daemon, "bytes.written", len);
                                self.metrics.incr(&daemon, "blocks.rereplicated", 1);
                                self.namenode.block_received(write.end, to, block);
                            } else {
                                self.namenode.replication_failed(block);
                            }
                        }
                        None => self.namenode.replication_failed(block),
                    }
                }
                DnCommand::Invalidate { block, node } => {
                    if let Some(dn) = self.datanodes.get_mut(&node) {
                        dn.delete_block(block);
                    }
                }
            }
        }
    }

    /// Drive the protocol from `from` to `until` in heartbeat-interval
    /// steps (inclusive of the final instant).
    pub fn run_protocol(&mut self, net: &mut ClusterNet, from: SimTime, until: SimTime) {
        let step = self.namenode.heartbeat_interval();
        let mut t = from;
        while t <= until {
            self.heartbeat_round(net, t);
            t += step;
        }
    }

    // ----------------------------------------------------------- metrics

    /// Refresh the per-DataNode gauges (blocks held, free disk, liveness).
    fn sample_datanode_gauges(&mut self) {
        let nodes: Vec<NodeId> = self.datanodes.keys().copied().collect();
        for node in nodes {
            let dn = &self.datanodes[&node];
            let held = i64::try_from(dn.block_report().len()).unwrap_or(i64::MAX);
            let free = i64::try_from(dn.free_bytes()).unwrap_or(i64::MAX);
            let up = i64::from(dn.alive);
            let daemon = format!("datanode.{node}");
            self.metrics.set_gauge(&daemon, "blocks.held", held);
            self.metrics.set_gauge(&daemon, "disk.free_bytes", free);
            self.metrics.set_gauge(&daemon, "up", up);
        }
    }

    /// One DFS-wide metrics snapshot at virtual time `at`: gauges are
    /// refreshed from live state, then the NameNode's registry and the
    /// client/DataNode registry merge into a single sorted snapshot.
    pub fn metrics_snapshot(&mut self, at: SimTime) -> MetricsSnapshot {
        self.namenode.sample_gauges();
        self.sample_datanode_gauges();
        let mut snap = self.namenode.metrics.snapshot(at);
        snap.merge(&self.metrics.snapshot(at));
        snap
    }

    // ------------------------------------------------------------ faults

    /// Crash a DataNode daemon (blocks stay on disk).
    pub fn crash_datanode(&mut self, node: NodeId) {
        if let Some(dn) = self.datanodes.get_mut(&node) {
            dn.crash();
            self.metrics.incr(&format!("datanode.{node}"), "crashes", 1);
        }
    }

    /// Restart the entire DFS: NameNode rebuilds from its journal and
    /// enters safe mode; every DataNode restarts, runs its integrity scan
    /// (charged at disk bandwidth), then registers and sends its block
    /// report. Returns the virtual time safe mode exits.
    pub fn restart_all(&mut self, _net: &mut ClusterNet, now: SimTime) -> Result<Timed<()>> {
        self.namenode.restart(now)?;
        // Each DataNode scans in parallel on its own disk. The integrity
        // check reads and CRC-verifies thousands of individual block files,
        // so its effective rate is below peak sequential bandwidth (~2/3 on
        // a 2013 HDD — seeks between block files plus checksum compute).
        let scan_bw = (self.disk_bw * 2 / 3).max(1);
        let mut report_times: Vec<(SimTime, NodeId)> = Vec::new();
        let node_ids: Vec<NodeId> = self.datanodes.keys().copied().collect();
        for node in node_ids {
            // Keys collected from this very map one statement up.
            let Some(dn) = self.datanodes.get_mut(&node) else { continue };
            dn.restart();
            let daemon = format!("datanode.{node}");
            self.metrics.restart_daemon(&daemon);
            self.metrics.incr(&daemon, "restarts", 1);
            let scan_time = dn.scan_duration(scan_bw);
            dn.scan_blocks();
            report_times.push((now + scan_time, node));
        }
        report_times.sort();
        let mut exit_at = None;
        for (t, node) in &report_times {
            let dn = &self.datanodes[node];
            self.namenode.register_datanode(*t, *node, dn.free_bytes());
            let report = dn.block_report();
            if self.namenode.process_block_report(*t, *node, &report) {
                exit_at = Some(*t);
            }
            // The full report covered every pending delta; discard them so
            // the next heartbeat doesn't resend what was just reported.
            if let Some(dn) = self.datanodes.get_mut(node) {
                let _ = dn.drain_incremental();
            }
        }
        // The safe-mode extension may still be pending after the last
        // report; poll forward in heartbeat steps until it exits.
        let mut t = report_times.last().map(|(t, _)| *t).unwrap_or(now);
        let step = self.namenode.heartbeat_interval();
        let mut guard = 0;
        while exit_at.is_none() && self.namenode.safemode.is_on() {
            t += step;
            let (reported, expected) = self.namenode.block_census();
            if self.namenode.safemode.update(t, reported, expected) {
                exit_at = Some(t);
            }
            guard += 1;
            if guard > 10_000 {
                // Blocks are genuinely missing: safe mode will never exit
                // on its own — exactly the paper's "corrupted Hadoop
                // cluster that stopped all the new jobs".
                return Err(HlError::SafeMode(format!(
                    "stuck: {} of {} blocks reported",
                    reported, expected
                )));
            }
        }
        Ok(Timed { value: (), completed_at: exit_at.unwrap_or(t) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_common::units::ByteSize;

    fn setup(nodes: usize) -> (Dfs, ClusterNet, Configuration) {
        let spec = ClusterSpec::course_hadoop(nodes);
        let mut config = Configuration::with_defaults();
        config.set(hl_common::config::keys::DFS_BLOCK_SIZE, 1024u64); // small blocks for tests
        let dfs = Dfs::format(&config, &spec).unwrap();
        let net = ClusterNet::new(&spec);
        (dfs, net, config)
    }

    #[test]
    fn put_then_read_round_trips_bytes() {
        let (mut dfs, mut net, _) = setup(4);
        dfs.namenode.mkdirs("/data").unwrap();
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let put = dfs.put(&mut net, SimTime::ZERO, "/data/f", &data, None).unwrap();
        assert!(put.completed_at > SimTime::ZERO, "writes cost time");
        let got = dfs.read(&mut net, put.completed_at, "/data/f", None).unwrap();
        assert_eq!(got.value, data);
        // 5000 bytes / 1024 block size = 5 blocks, 3 replicas each.
        let blocks = dfs.file_blocks("/data/f").unwrap();
        assert_eq!(blocks.len(), 5);
        assert!(blocks.iter().all(|(_, _, holders)| holders.len() == 3));
    }

    #[test]
    fn compressed_put_stores_fewer_bytes_and_reads_back_identical() {
        let (mut dfs, mut net, _) = setup(4);
        dfs.namenode.mkdirs("/data").unwrap();
        let data = b"six nodes, three racks, one very repetitive corpus\n".repeat(200);
        let put = dfs
            .put_compressed(&mut net, SimTime::ZERO, "/data/f.hlz", &data, None, CodecId::Hlz)
            .unwrap();
        assert_eq!(dfs.file_codec("/data/f.hlz").unwrap(), CodecId::Hlz);
        // Stored bytes (file len counts stored bytes) shrink hard.
        let stored = dfs.namenode.namespace().file("/data/f.hlz").unwrap().len;
        assert!(stored * 4 < data.len() as u64, "{} logical bytes stored as {stored}", data.len());
        // Every block holds whole frames: each starts on a sync marker.
        for (id, _, _) in dfs.file_blocks("/data/f.hlz").unwrap() {
            let bytes = dfs.peek_block_bytes(id).unwrap();
            assert_eq!(hl_codec::find_sync(&bytes, 0), Some(0));
            assert!(hl_codec::decode_frames_from(&bytes, 0).is_ok());
        }
        // Transparent decode returns the logical bytes.
        let got = dfs.read(&mut net, put.completed_at, "/data/f.hlz", None).unwrap();
        assert_eq!(got.value, data);
        // The codec instruments saw the write.
        let snap = dfs.metrics_snapshot(put.completed_at);
        assert_eq!(snap.counter("dfs.client", "codec.in_bytes"), data.len() as u64);
        assert_eq!(snap.counter("dfs.client", "codec.out_bytes"), stored);
    }

    #[test]
    fn compressed_codec_flag_survives_namenode_restart() {
        let (mut dfs, mut net, _) = setup(4);
        dfs.namenode.mkdirs("/data").unwrap();
        let data = b"the edit log must remember the decode instruction ".repeat(100);
        let put = dfs
            .put_compressed(&mut net, SimTime::ZERO, "/data/f.hlz", &data, None, CodecId::Hlz)
            .unwrap();
        // Restart straight off the journal tail...
        let up = dfs.restart_all(&mut net, put.completed_at).unwrap();
        assert_eq!(dfs.file_codec("/data/f.hlz").unwrap(), CodecId::Hlz);
        let got = dfs.read(&mut net, up.completed_at, "/data/f.hlz", None).unwrap();
        assert_eq!(got.value, data);
        // ...and again from a checkpointed fsimage (SetCodec folded in).
        dfs.namenode.checkpoint();
        let up = dfs.restart_all(&mut net, got.completed_at).unwrap();
        assert_eq!(dfs.file_codec("/data/f.hlz").unwrap(), CodecId::Hlz);
        assert_eq!(dfs.read(&mut net, up.completed_at, "/data/f.hlz", None).unwrap().value, data);
    }

    #[test]
    fn rotted_compressed_block_is_caught_by_crc_before_decode() {
        let (mut dfs, mut net, _) = setup(4);
        dfs.namenode.mkdirs("/data").unwrap();
        let data = b"bit rot on stored bytes must never reach the decoder ".repeat(120);
        let put = dfs
            .put_compressed(&mut net, SimTime::ZERO, "/data/f.hlz", &data, None, CodecId::Hlz)
            .unwrap();
        let (id, _, holders) = dfs.file_blocks("/data/f.hlz").unwrap()[0].clone();
        // Rot one replica: the DataNode-level chunk CRC catches it on read
        // and the client fails over before any frame decode runs.
        dfs.datanode_mut(holders[0]).unwrap().corrupt_block(id, 17);
        let got = dfs.read(&mut net, put.completed_at, "/data/f.hlz", Some(holders[0])).unwrap();
        assert_eq!(got.value, data);
        let snap = dfs.metrics_snapshot(got.completed_at);
        assert_eq!(snap.counter("dfs.client", "read.corrupt_replicas"), 1);
        // Rot *every* replica: the read must fail loudly, not hand back
        // corrupt bytes (CRC wall ahead of the codec).
        let (id2, _, holders2) = dfs.file_blocks("/data/f.hlz").unwrap()[0].clone();
        for h in holders2 {
            dfs.datanode_mut(h).unwrap().corrupt_block(id2, 23);
        }
        assert!(dfs.read(&mut net, got.completed_at, "/data/f.hlz", None).is_err());
    }

    #[test]
    fn node_local_read_is_faster_than_remote() {
        let (mut dfs, mut net, _) = setup(4);
        dfs.namenode.mkdirs("/d").unwrap();
        let data = vec![7u8; 1024];
        dfs.put(&mut net, SimTime::ZERO, "/d/f", &data, Some(NodeId(0))).unwrap();
        let holders = dfs.file_blocks("/d/f").unwrap()[0].2.clone();
        assert!(holders.contains(&NodeId(0)), "writer holds replica 1");
        net.reset_accounting();
        let t0 = SimTime(10_000_000);
        let local = dfs.read(&mut net, t0, "/d/f", Some(NodeId(0))).unwrap();
        assert_eq!(net.remote_bytes(), 0, "node-local read moves nothing");
        // A reader with no replica must cross the network.
        let off: Vec<NodeId> = (0..4u32).map(NodeId).filter(|n| !holders.contains(n)).collect();
        let remote = dfs.read(&mut net, local.completed_at, "/d/f", Some(off[0])).unwrap();
        assert!(net.remote_bytes() >= 1024);
        assert!(remote.completed_at.since(local.completed_at) > local.completed_at.since(t0));
    }

    #[test]
    fn corrupt_replica_falls_back_and_reports() {
        let (mut dfs, mut net, _) = setup(4);
        dfs.namenode.mkdirs("/d").unwrap();
        let data = vec![3u8; 1000];
        dfs.put(&mut net, SimTime::ZERO, "/d/f", &data, None).unwrap();
        let (id, _, holders) = dfs.file_blocks("/d/f").unwrap()[0].clone();
        // Corrupt the replica the reader would pick first.
        let reader = holders[0];
        dfs.datanode_mut(reader).unwrap().corrupt_block(id, 500);
        let got = dfs.read(&mut net, SimTime::ZERO, "/d/f", Some(reader)).unwrap();
        assert_eq!(got.value, data, "fallback replica served the data");
        // The NameNode forgot the corrupt location.
        assert!(!dfs.namenode.block_locations(id).contains(&reader));
        // ...and the replication monitor will restore 3× later:
        dfs.heartbeat_round(&mut net, SimTime(1_000_000));
        assert_eq!(dfs.namenode.block_locations(id).len(), 3);
    }

    #[test]
    fn all_replicas_lost_is_missing_block() {
        let (mut dfs, mut net, _) = setup(4);
        dfs.namenode.mkdirs("/d").unwrap();
        dfs.put(&mut net, SimTime::ZERO, "/d/f", &[1u8; 100], None).unwrap();
        let (_id, _, holders) = dfs.file_blocks("/d/f").unwrap()[0].clone();
        for h in holders {
            dfs.crash_datanode(h);
        }
        let err = dfs.read(&mut net, SimTime::ZERO, "/d/f", None).unwrap_err();
        assert!(matches!(err, HlError::MissingBlock { .. }));
    }

    #[test]
    fn dead_datanode_triggers_rereplication_via_protocol() {
        let (mut dfs, mut net, _) = setup(5);
        dfs.namenode.mkdirs("/d").unwrap();
        dfs.put(&mut net, SimTime::ZERO, "/d/f", &[9u8; 3000], None).unwrap();
        let victim = dfs.file_blocks("/d/f").unwrap()[0].2[0];
        dfs.crash_datanode(victim);
        // Run the protocol past the dead-node timeout (10 minutes default).
        let mut t = SimTime::ZERO;
        for _ in 0..250 {
            t += SimDuration::from_secs(3);
            dfs.heartbeat_round(&mut net, t);
        }
        for (_, _, holders) in dfs.file_blocks("/d/f").unwrap() {
            assert_eq!(holders.len(), 3, "re-replicated after node death");
            assert!(!holders.contains(&victim));
        }
        // The file still reads back.
        let got = dfs.read(&mut net, t, "/d/f", None).unwrap();
        assert_eq!(got.value.len(), 3000);
    }

    #[test]
    fn synthetic_staging_costs_realistic_time() {
        // 10 GB (the Yahoo dataset) onto the 8-node course cluster with
        // 64 MB blocks: paper says "less than five minutes".
        let spec = ClusterSpec::course_hadoop(8);
        let config = Configuration::with_defaults();
        let mut dfs = Dfs::format(&config, &spec).unwrap();
        let mut net = ClusterNet::new(&spec);
        dfs.namenode.mkdirs("/data").unwrap();
        let t = dfs
            .put_synthetic(&mut net, SimTime::ZERO, "/data/yahoo", 10 * ByteSize::GIB, None)
            .unwrap();
        let mins = t.completed_at.as_secs_f64() / 60.0;
        assert!(mins < 5.0, "10 GB staging took {mins:.1} min");
        assert!(mins > 0.5, "staging cannot be free: {mins:.2} min");
        // Metadata exists, bytes do not.
        assert_eq!(dfs.namenode.namespace().du("/data").unwrap(), 10 * ByteSize::GIB);
        assert_eq!(dfs.file_blocks("/data/yahoo").unwrap().len(), 160);
    }

    #[test]
    fn restart_reenters_and_exits_safemode_with_scan_time() {
        let (mut dfs, mut net, _) = setup(4);
        dfs.namenode.mkdirs("/d").unwrap();
        dfs.put(&mut net, SimTime::ZERO, "/d/f", &vec![5u8; 50_000], None).unwrap();
        let r = dfs.restart_all(&mut net, SimTime::ZERO).unwrap();
        assert!(!dfs.namenode.safemode.is_on());
        // Scan of ~150 KB at 120 MiB/s is instant-ish, but the 30 s
        // safe-mode extension must have elapsed.
        assert!(r.completed_at >= SimTime::ZERO + SimDuration::from_secs(30));
        let got = dfs.read(&mut net, r.completed_at, "/d/f", None).unwrap();
        assert_eq!(got.value.len(), 50_000);
    }

    #[test]
    fn restart_with_lost_blocks_reports_stuck_safemode() {
        let (mut dfs, mut net, _) = setup(4);
        dfs.namenode.mkdirs("/d").unwrap();
        dfs.put(&mut net, SimTime::ZERO, "/d/f", &[5u8; 100], None).unwrap();
        let (_, _, holders) = dfs.file_blocks("/d/f").unwrap()[0].clone();
        // Wipe every replica's disk: the block is gone from the world.
        for h in holders {
            dfs.datanode_mut(h).unwrap().wipe();
        }
        let err = dfs.restart_all(&mut net, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, HlError::SafeMode(_)));
        assert!(dfs.namenode.safemode.is_on(), "cluster is stuck exactly as in the paper");
    }

    #[test]
    fn put_respects_custom_replication() {
        let (mut dfs, mut net, _) = setup(5);
        dfs.namenode.mkdirs("/d").unwrap();
        dfs.put_with_replication(&mut net, SimTime::ZERO, "/d/r2", &[1u8; 10], None, 2).unwrap();
        assert_eq!(dfs.file_blocks("/d/r2").unwrap()[0].2.len(), 2);
    }

    #[test]
    fn pipeline_kill_recovers_write_and_invalidates_stale_replica() {
        let (mut dfs, mut net, _) = setup(5);
        dfs.namenode.mkdirs("/d").unwrap();
        let data: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
        // Kill the DataNode receiving store #1 (block 0's second replica)
        // right after the bytes hit its disk.
        dfs.arm_pipeline_fault(PipelineFault::KillTarget { after_stores: 1 });
        let put = dfs.put(&mut net, SimTime::ZERO, "/d/f", &data, None).unwrap();

        let dead: Vec<NodeId> =
            dfs.datanode_ids().into_iter().filter(|&n| !dfs.datanode(n).unwrap().alive).collect();
        assert_eq!(dead.len(), 1, "the armed fault killed one pipeline target");
        let victim = dead[0];

        // The write survived the mid-pipeline death and reads back
        // bit-identical, CRC and all.
        let got = dfs.read(&mut net, put.completed_at, "/d/f", None).unwrap();
        assert_eq!(Crc32::checksum(&got.value), Crc32::checksum(&data));
        assert_eq!(got.value, data);

        // The dead node still holds block 0 at the pre-recovery stamp,
        // invisible to the NameNode.
        let (id, _, holders) = dfs.file_blocks("/d/f").unwrap()[0].clone();
        assert!(!holders.contains(&victim), "NameNode dropped the dead target");
        let stale = dfs.datanode(victim).unwrap().gen_stamp_of(id).expect("orphan on disk");
        let current = dfs.namenode.block(id).unwrap().gen_stamp;
        assert!(stale < current, "recovery bumped the generation stamp past the orphan");

        // Restart the victim: its block report confesses the stale stamp,
        // the NameNode queues an invalidation, and heartbeat rounds both
        // delete the orphan and restore 3× replication.
        dfs.datanode_mut(victim).unwrap().restart();
        let report = dfs.datanode(victim).unwrap().block_report();
        dfs.namenode.process_block_report(put.completed_at, victim, &report);
        assert!(!dfs.namenode.block_locations(id).contains(&victim));
        let mut t = put.completed_at;
        for _ in 0..4 {
            t += SimDuration::from_secs(3);
            dfs.heartbeat_round(&mut net, t);
        }
        let locations = dfs.namenode.block_locations(id);
        assert_eq!(locations.len(), 3, "re-replication restored the target");
        for n in locations {
            assert_eq!(
                dfs.datanode(n).unwrap().gen_stamp_of(id),
                Some(current),
                "every live replica carries the recovered stamp"
            );
        }
        assert_ne!(
            dfs.datanode(victim).unwrap().gen_stamp_of(id),
            Some(stale),
            "the stale replica was invalidated"
        );
    }

    #[test]
    fn slow_ack_excludes_live_node_and_block_report_reaps_its_replica() {
        let (mut dfs, mut net, _) = setup(5);
        dfs.namenode.mkdirs("/d").unwrap();
        let data = vec![9u8; 2500];
        dfs.arm_pipeline_fault(PipelineFault::SlowAck { after_stores: 0 });
        let put = dfs.put(&mut net, SimTime::ZERO, "/d/f", &data, None).unwrap();
        assert_eq!(dfs.read(&mut net, put.completed_at, "/d/f", None).unwrap().value, data);

        // Nobody died — the ack just never made it back.
        assert!(dfs.datanode_ids().iter().all(|&n| dfs.datanode(n).unwrap().alive));

        // Exactly one live non-holder kept a stale copy of block 0.
        let (id, _, holders) = dfs.file_blocks("/d/f").unwrap()[0].clone();
        let current = dfs.namenode.block(id).unwrap().gen_stamp;
        let silent: Vec<NodeId> = dfs
            .datanode_ids()
            .into_iter()
            .filter(|n| !holders.contains(n))
            .filter(|&n| dfs.datanode(n).unwrap().gen_stamp_of(id).is_some())
            .collect();
        assert_eq!(silent.len(), 1, "the timed-out target kept its copy");
        let node = silent[0];
        assert!(dfs.datanode(node).unwrap().gen_stamp_of(id).unwrap() < current);

        // Its own routine block report is what gets the copy reaped.
        let report = dfs.datanode(node).unwrap().block_report();
        dfs.namenode.process_block_report(put.completed_at, node, &report);
        let mut t = put.completed_at;
        for _ in 0..4 {
            t += SimDuration::from_secs(3);
            dfs.heartbeat_round(&mut net, t);
        }
        let gs = dfs.datanode(node).unwrap().gen_stamp_of(id);
        assert!(
            gs.is_none() || gs == Some(current),
            "stale copy gone (or re-replicated fresh), not lingering: {gs:?}"
        );
    }

    #[test]
    fn crashed_writer_is_lease_recovered_to_whole_block_prefix() {
        let (mut dfs, mut net, _) = setup(4);
        dfs.namenode.mkdirs("/d").unwrap();
        dfs.arm_pipeline_fault(PipelineFault::CrashWriter { after_blocks: 2 });
        let err = dfs.put(&mut net, SimTime::ZERO, "/d/open", &[5u8; 3000], None).unwrap_err();
        assert!(err.to_string().contains("crashed"), "clean writer-death error: {err}");
        assert!(dfs.namenode.lease("/d/open").is_some(), "file stays open for write");
        assert!(!dfs.namenode.namespace().file("/d/open").unwrap().complete);

        // Nobody calls recoverLease; the lease monitor alone must notice
        // the holder has gone silent past the hard limit and finalize.
        let mut t = SimTime::ZERO;
        while t < SimTime::ZERO + SimDuration::from_secs(320) {
            t += SimDuration::from_secs(10);
            dfs.heartbeat_round(&mut net, t);
        }
        assert!(dfs.namenode.open_files().is_empty(), "lease recovered");
        let file = dfs.namenode.namespace().file("/d/open").unwrap();
        assert!(file.complete);
        assert_eq!(file.len, 2048, "closed at the confirmed whole-block prefix");
        let got = dfs.read(&mut net, t, "/d/open", None).unwrap();
        assert_eq!(got.value, vec![5u8; 2048]);
    }

    #[test]
    fn dead_node_backoff_is_exponential_and_deterministic() {
        let n = NodeId(1);
        let mut a = DeadNodes::new(42);
        let mut b = DeadNodes::new(42);
        a.record_failure(SimTime::ZERO, n);
        b.record_failure(SimTime::ZERO, n);
        assert_eq!(a.entries[&n], b.entries[&n], "same seed, same ban window");
        assert!(a.is_banned(SimTime::ZERO, n));
        let until1 = a.entries[&n].1;
        assert!(!a.is_banned(until1, n), "bans expire");

        // A second strike at least doubles the 30 s base backoff.
        a.record_failure(until1, n);
        let until2 = a.entries[&n].1;
        assert!(until2.since(until1) >= SimDuration::from_secs(60));

        // A different client seed jitters to a different instant.
        let mut c = DeadNodes::new(7);
        c.record_failure(SimTime::ZERO, n);
        assert_ne!(c.entries[&n].1, until1);

        // Success forgives everything.
        a.record_success(n);
        assert!(!a.is_banned(SimTime::ZERO, n));
    }

    #[test]
    fn read_fails_over_around_a_crashed_replica_holder() {
        let (mut dfs, mut net, _) = setup(4);
        dfs.namenode.mkdirs("/d").unwrap();
        let data = vec![8u8; 900];
        dfs.put(&mut net, SimTime::ZERO, "/d/f", &data, None).unwrap();
        let holders = dfs.file_blocks("/d/f").unwrap()[0].2.clone();
        dfs.crash_datanode(holders[0]);
        // First read trips over the dead holder, bans it, and serves the
        // data from a surviving replica; the retry skips it outright.
        let got = dfs.read(&mut net, SimTime::ZERO, "/d/f", None).unwrap();
        assert_eq!(got.value, data);
        let again = dfs.read(&mut net, got.completed_at, "/d/f", None).unwrap();
        assert_eq!(again.value, data);
    }

    #[test]
    fn restart_preserves_counters_and_resets_gauges_without_double_count() {
        let (mut dfs, mut net, _) = setup(4);
        dfs.namenode.mkdirs("/d").unwrap();
        dfs.put(&mut net, SimTime::ZERO, "/d/f", &[5u8; 5000], None).unwrap();
        let before = dfs.metrics_snapshot(SimTime::ZERO);
        let written = before.counter_across_daemons("bytes.written");
        assert!(written >= 3 * 5000, "3 replicas of 5000 bytes: {written}");
        let adds = before.counter("namenode", "rpc.add_block");
        assert!(adds >= 5);
        assert!(before.gauge("namenode", "blocks.total") >= 5);

        let r = dfs.restart_all(&mut net, SimTime::ZERO).unwrap();
        let after = dfs.metrics_snapshot(r.completed_at);
        // Monotonic counters carry across the restart unchanged — the
        // restart must neither re-count the pre-crash history (double
        // count) nor lose it.
        assert_eq!(after.counter_across_daemons("bytes.written"), written);
        assert_eq!(after.counter("namenode", "rpc.add_block"), adds);
        assert_eq!(after.counter("namenode", "restarts"), 1);
        assert_eq!(after.counter_across_daemons("restarts"), 1 + 4);
        // Gauges were re-sampled from post-restart live state.
        assert_eq!(after.gauge("namenode", "safemode.on"), 0);
        assert_eq!(after.counter("namenode", "safemode.entered"), 1);

        // A second restart counts exactly once more.
        let r2 = dfs.restart_all(&mut net, r.completed_at).unwrap();
        let snap2 = dfs.metrics_snapshot(r2.completed_at);
        assert_eq!(snap2.counter("namenode", "restarts"), 2);
        assert_eq!(snap2.counter_across_daemons("bytes.written"), written);
    }
}
