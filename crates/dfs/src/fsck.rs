//! `hadoop fsck` — the health report.
//!
//! Assignment 2 asks students to "execute and record the output of a number
//! of Hadoop shell commands to observe how HDFS transforms, stores,
//! replicates, and abstracts the actual data". `fsck /` is the centerpiece:
//! it walks the namespace, resolves every block to its replica locations
//! (straight out of NameNode RAM — Figure 2's point), and totals
//! under-replicated / missing blocks into a HEALTHY or CORRUPT verdict.

use std::fmt;

use hl_common::units::ByteSize;

use crate::client::Dfs;
use crate::lease::LeaseState;
use crate::namenode::NameNode;

/// Health of one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileHealth {
    /// File path.
    pub path: String,
    /// Length in bytes.
    pub len: u64,
    /// Total blocks.
    pub blocks: usize,
    /// Blocks with fewer live replicas than the target.
    pub under_replicated: usize,
    /// Blocks with zero live replicas.
    pub missing: usize,
    /// Write-lease state when the file is open for write (`None` for
    /// closed files). `Recovering` renders as `RECOVERING`, the other
    /// states as `OPEN_FOR_WRITE`.
    pub lease: Option<LeaseState>,
    /// Per-block `(block-id, expected, live, holders)` detail rows.
    pub detail: Vec<(u64, u32, usize, Vec<String>)>,
}

/// The whole report.
#[derive(Debug, Clone, PartialEq)]
pub struct FsckReport {
    /// Path the check started at.
    pub root: String,
    /// Per-file health, namespace order.
    pub files: Vec<FileHealth>,
    /// Total size under `root`.
    pub total_size: u64,
    /// Total blocks.
    pub total_blocks: usize,
    /// Total under-replicated blocks.
    pub under_replicated: usize,
    /// Total missing blocks.
    pub missing: usize,
    /// Files currently open for write (including those in recovery).
    pub open_files: usize,
    /// Average replication over all blocks.
    pub avg_replication: f64,
    /// Live DataNode count.
    pub live_datanodes: usize,
    /// Approximate NameNode RAM held by metadata.
    pub metadata_ram: u64,
}

impl FsckReport {
    /// `fsck` is healthy when no block is missing (under-replication is a
    /// warning, not corruption — matching HDFS).
    pub fn is_healthy(&self) -> bool {
        self.missing == 0
    }
}

/// Run fsck over `root`.
pub fn fsck(dfs: &Dfs, root: &str) -> hl_common::Result<FsckReport> {
    let nn: &NameNode = &dfs.namenode;
    let files_meta = nn.namespace().files_under(root)?;
    let mut files = Vec::new();
    let mut total_size = 0;
    let mut total_blocks = 0;
    let mut under_replicated = 0;
    let mut missing = 0;
    let mut open_files = 0;
    let mut replica_sum = 0usize;

    for (path, f) in files_meta {
        let lease = nn.lease(&path).map(|l| l.state);
        if lease.is_some() {
            open_files += 1;
        }
        let mut health = FileHealth {
            path,
            len: f.len,
            blocks: f.blocks.len(),
            under_replicated: 0,
            missing: 0,
            lease,
            detail: Vec::new(),
        };
        for (i, &b) in f.blocks.iter().enumerate() {
            let locations = nn.block_locations(b);
            let live = locations.len();
            replica_sum += live;
            // The trailing block of an open file is still under
            // construction: no replica yet is the pipeline mid-flight (or
            // a crashed writer's tail awaiting lease recovery), not data
            // loss — HDFS fsck likewise skips open blocks.
            let under_construction = lease.is_some() && i + 1 == f.blocks.len() && live == 0;
            if under_construction {
                // Counted in detail, excluded from the verdict.
            } else if live == 0 {
                health.missing += 1;
            } else if (live as u32) < f.replication {
                health.under_replicated += 1;
            }
            health.detail.push((
                b.0,
                f.replication,
                live,
                locations.iter().map(|n| n.to_string()).collect(),
            ));
        }
        total_size += f.len;
        total_blocks += health.blocks;
        under_replicated += health.under_replicated;
        missing += health.missing;
        files.push(health);
    }

    Ok(FsckReport {
        root: root.to_string(),
        files,
        total_size,
        total_blocks,
        under_replicated,
        missing,
        open_files,
        avg_replication: if total_blocks == 0 {
            0.0
        } else {
            replica_sum as f64 / total_blocks as f64
        },
        live_datanodes: nn.live_datanodes().len(),
        metadata_ram: nn.metadata_ram_bytes(),
    })
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FSCK started for path {}", self.root)?;
        for file in &self.files {
            write!(f, "{} {} bytes, {} block(s): ", file.path, file.len, file.blocks)?;
            match file.lease {
                Some(LeaseState::Recovering) => write!(f, "RECOVERING ")?,
                Some(_) => write!(f, "OPEN_FOR_WRITE ")?,
                None => {}
            }
            if file.missing > 0 {
                writeln!(f, "MISSING {} blocks!", file.missing)?;
            } else if file.under_replicated > 0 {
                writeln!(f, "Under replicated ({} blocks)", file.under_replicated)?;
            } else {
                writeln!(f, "OK")?;
            }
            for (blk, expected, live, holders) in &file.detail {
                writeln!(
                    f,
                    "  blk_{blk} len={} repl={live}/{expected} [{}]",
                    file.len,
                    holders.join(", ")
                )?;
            }
        }
        writeln!(f, "Status: {}", if self.is_healthy() { "HEALTHY" } else { "CORRUPT" })?;
        writeln!(
            f,
            " Total size:\t{} B ({})",
            self.total_size,
            ByteSize::display(self.total_size)
        )?;
        writeln!(f, " Total blocks:\t{}", self.total_blocks)?;
        writeln!(f, " Under-replicated blocks:\t{}", self.under_replicated)?;
        writeln!(f, " Missing blocks:\t{}", self.missing)?;
        writeln!(f, " Files open for write:\t{}", self.open_files)?;
        writeln!(f, " Average block replication:\t{:.4}", self.avg_replication)?;
        writeln!(f, " Live DataNodes:\t{}", self.live_datanodes)?;
        writeln!(
            f,
            " NameNode metadata resident in RAM:\t{}",
            ByteSize::display(self.metadata_ram)
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_cluster::network::ClusterNet;
    use hl_cluster::node::ClusterSpec;
    use hl_common::config::keys;
    use hl_common::prelude::*;

    fn setup() -> (Dfs, ClusterNet) {
        let spec = ClusterSpec::course_hadoop(4);
        let mut config = Configuration::with_defaults();
        config.set(keys::DFS_BLOCK_SIZE, 512u64);
        (Dfs::format(&config, &spec).unwrap(), ClusterNet::new(&spec))
    }

    #[test]
    fn healthy_report() {
        let (mut dfs, mut net) = setup();
        dfs.namenode.mkdirs("/data").unwrap();
        dfs.put(&mut net, SimTime::ZERO, "/data/f", &[1u8; 1200], None).unwrap();
        let report = fsck(&dfs, "/").unwrap();
        assert!(report.is_healthy());
        assert_eq!(report.total_blocks, 3);
        assert_eq!(report.total_size, 1200);
        assert!((report.avg_replication - 3.0).abs() < 1e-9);
        assert_eq!(report.live_datanodes, 4);
        let text = report.to_string();
        assert!(text.contains("Status: HEALTHY"));
        assert!(text.contains("/data/f"));
        assert!(text.contains("repl=3/3"));
    }

    #[test]
    fn under_replication_is_flagged_but_healthy() {
        let (mut dfs, mut net) = setup();
        dfs.namenode.mkdirs("/d").unwrap();
        dfs.put(&mut net, SimTime::ZERO, "/d/f", &[1u8; 100], None).unwrap();
        let (id, _, holders) = dfs.file_blocks("/d/f").unwrap()[0].clone();
        // Remove one replica from the NameNode's view via an empty report.
        dfs.namenode.process_block_report(SimTime(1), holders[0], &[]);
        let _ = id;
        let report = fsck(&dfs, "/").unwrap();
        assert!(report.is_healthy());
        assert_eq!(report.under_replicated, 1);
        assert!(report.to_string().contains("Under replicated"));
    }

    #[test]
    fn missing_blocks_mean_corrupt() {
        let (mut dfs, mut net) = setup();
        dfs.namenode.mkdirs("/d").unwrap();
        dfs.put(&mut net, SimTime::ZERO, "/d/f", &[1u8; 100], None).unwrap();
        let holders = dfs.file_blocks("/d/f").unwrap()[0].2.clone();
        for h in holders {
            dfs.namenode.process_block_report(SimTime(1), h, &[]);
        }
        let report = fsck(&dfs, "/").unwrap();
        assert!(!report.is_healthy());
        assert_eq!(report.missing, 1);
        assert!(report.to_string().contains("Status: CORRUPT"));
        assert!(report.to_string().contains("MISSING"));
    }

    #[test]
    fn open_files_show_lease_state_and_tail_is_not_missing() {
        let (mut dfs, mut net) = setup();
        dfs.namenode.mkdirs("/d").unwrap();
        dfs.put(&mut net, SimTime::ZERO, "/d/closed", &[2u8; 600], None).unwrap();
        // A writer that dies mid-file leaves /d/open under lease with an
        // allocated-but-unconfirmed trailing block.
        dfs.arm_pipeline_fault(crate::client::PipelineFault::CrashWriter { after_blocks: 1 });
        dfs.put(&mut net, SimTime::ZERO, "/d/open", &[3u8; 1200], None).unwrap_err();

        let report = fsck(&dfs, "/").unwrap();
        assert_eq!(report.open_files, 1);
        // The unconfirmed tail is under construction, not data loss.
        assert!(report.is_healthy(), "an open tail must not read as CORRUPT");
        assert_eq!(report.missing, 0);
        let text = report.to_string();
        assert!(text.contains("OPEN_FOR_WRITE"));
        assert!(text.contains("Files open for write:\t1"));
        assert!(!text.contains("RECOVERING"));

        // Kick off recovery: fsck now renders the RECOVERING state.
        assert!(!dfs.namenode.recover_lease("/d/open").unwrap());
        let text = fsck(&dfs, "/").unwrap().to_string();
        assert!(text.contains("RECOVERING"));

        // The lease check finalizes the file; fsck goes quiet again.
        dfs.namenode.check_leases(SimTime(1));
        let report = fsck(&dfs, "/").unwrap();
        assert_eq!(report.open_files, 0);
        assert!(report.is_healthy());
        assert!(!report.to_string().contains("OPEN_FOR_WRITE"));
    }

    #[test]
    fn scoped_fsck_only_covers_subtree() {
        let (mut dfs, mut net) = setup();
        dfs.namenode.mkdirs("/a").unwrap();
        dfs.namenode.mkdirs("/b").unwrap();
        dfs.put(&mut net, SimTime::ZERO, "/a/f", &[1u8; 100], None).unwrap();
        dfs.put(&mut net, SimTime::ZERO, "/b/g", &[1u8; 600], None).unwrap();
        let report = fsck(&dfs, "/b").unwrap();
        assert_eq!(report.files.len(), 1);
        assert_eq!(report.total_blocks, 2);
        assert!(fsck(&dfs, "/missing").is_err());
    }
}
