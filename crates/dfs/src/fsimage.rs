//! The fsimage: a serialized checkpoint of everything the NameNode must
//! recover after a restart.
//!
//! Real HDFS persists the namespace to `fsimage` and merges the edit log
//! into it at checkpoints (the secondary NameNode's whole job); a
//! restarting NameNode loads the image and replays only the edit-log
//! *tail* written since, instead of every op from genesis. This module is
//! that file format: namespace tree, block map (lengths, replication
//! targets, generation stamps — never locations, those only ever come from
//! block reports), allocation high-water marks, and the lease table.

use hl_common::prelude::*;
use hl_common::writable::{read_vu64, write_vu64, Writable};

use crate::block::BlockId;
use crate::lease::Lease;
use crate::namespace::Namespace;

/// One block's checkpointed metadata. Locations are deliberately absent:
/// HDFS never persists them — the DataNodes are the source of truth and
/// re-report after every restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRecord {
    /// Block identity.
    pub id: BlockId,
    /// Length in bytes.
    pub len: u64,
    /// Target replica count at checkpoint time.
    pub expected_replication: u32,
    /// Generation stamp at checkpoint time.
    pub gen_stamp: u64,
}

impl Writable for BlockRecord {
    fn write(&self, buf: &mut Vec<u8>) {
        write_vu64(self.id.0, buf);
        write_vu64(self.len, buf);
        write_vu64(u64::from(self.expected_replication), buf);
        write_vu64(self.gen_stamp, buf);
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(BlockRecord {
            id: BlockId(read_vu64(buf)?),
            len: read_vu64(buf)?,
            expected_replication: u32::try_from(read_vu64(buf)?)
                .map_err(|_| HlError::Codec("block replication overflows u32".into()))?,
            gen_stamp: read_vu64(buf)?,
        })
    }
}

/// A checkpoint of the NameNode's recoverable state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsImage {
    /// The namespace tree.
    pub namespace: Namespace,
    /// The block map, id-ordered.
    pub blocks: Vec<BlockRecord>,
    /// Next block id to allocate.
    pub next_block_id: u64,
    /// Next generation stamp to hand out.
    pub next_gen_stamp: u64,
    /// Outstanding write leases, path-ordered.
    pub leases: Vec<Lease>,
}

impl FsImage {
    /// Deserialize everything *except* the block records, which sit at the
    /// end of the image exactly so recovery can stop short of them: the
    /// namespace, allocation marks, and leases are what a restart must
    /// have, while the (much larger) block section exists to make the
    /// image self-contained and is only fully parsed when verifying it.
    /// The returned image has an empty `blocks` vec.
    pub fn prefix_from_bytes(bytes: &[u8]) -> Result<Self> {
        let buf = &mut &bytes[..];
        Ok(FsImage {
            namespace: Namespace::read(buf)?,
            next_block_id: read_vu64(buf)?,
            next_gen_stamp: read_vu64(buf)?,
            leases: Vec::<Lease>::read(buf)?,
            blocks: Vec::new(),
        })
    }
}

impl Writable for FsImage {
    // Field order is load-bearing: the block records go last so
    // [`FsImage::prefix_from_bytes`] can deserialize the recovery-critical
    // prefix without touching them.
    fn write(&self, buf: &mut Vec<u8>) {
        self.namespace.write(buf);
        write_vu64(self.next_block_id, buf);
        write_vu64(self.next_gen_stamp, buf);
        self.leases.write(buf);
        self.blocks.write(buf);
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(FsImage {
            namespace: Namespace::read(buf)?,
            next_block_id: read_vu64(buf)?,
            next_gen_stamp: read_vu64(buf)?,
            leases: Vec::<Lease>::read(buf)?,
            blocks: Vec::<BlockRecord>::read(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::FIRST_GEN_STAMP;
    use crate::lease::LeaseState;

    #[test]
    fn fsimage_round_trips() {
        // Empty image (a freshly formatted NameNode's first checkpoint).
        let empty = FsImage::default();
        assert_eq!(FsImage::from_bytes(&empty.to_bytes()).unwrap(), empty);

        // Populated image: namespace + blocks + leases.
        let mut ns = Namespace::new();
        ns.mkdirs("/data").unwrap();
        ns.create_file("/data/f", 3, 64, SimTime(5)).unwrap();
        ns.append_block("/data/f", BlockId(1), 64).unwrap();
        ns.create_file("/data/open", 2, 128, SimTime(9)).unwrap();
        ns.complete_file("/data/f").unwrap();
        let image = FsImage {
            namespace: ns,
            blocks: vec![
                BlockRecord {
                    id: BlockId(1),
                    len: 64,
                    expected_replication: 3,
                    gen_stamp: FIRST_GEN_STAMP,
                },
                BlockRecord { id: BlockId(2), len: 10, expected_replication: 2, gen_stamp: 1007 },
            ],
            next_block_id: 3,
            next_gen_stamp: 1008,
            leases: vec![Lease {
                path: "/data/open".into(),
                holder: "DFSClient@node1".into(),
                renewed_at: SimTime(9),
                state: LeaseState::Active,
            }],
        };
        let bytes = image.to_bytes();
        assert_eq!(FsImage::from_bytes(&bytes).unwrap(), image);
        // The prefix parse recovers everything but the block records.
        let prefix = FsImage::prefix_from_bytes(&bytes).unwrap();
        assert_eq!(prefix.namespace, image.namespace);
        assert_eq!(prefix.next_block_id, image.next_block_id);
        assert_eq!(prefix.next_gen_stamp, image.next_gen_stamp);
        assert_eq!(prefix.leases, image.leases);
        assert!(prefix.blocks.is_empty());
        let record = image.blocks[1];
        assert_eq!(BlockRecord::from_bytes(&record.to_bytes()).unwrap(), record);

        // Truncation anywhere is a codec error, not a partial image.
        assert!(FsImage::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(BlockRecord::from_bytes(&[0x80]).is_err());
    }
}
