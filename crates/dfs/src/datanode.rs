//! The DataNode: stores block replicas and reports them to the NameNode.
//!
//! Figure 2's bottom row. The behaviours that matter to the course are all
//! here: blocks live as checksummed chunks on the node's local disk, a
//! restarted DataNode re-verifies its blocks before reporting in (the
//! "at least fifteen minutes for all the Data Nodes to check for data
//! integrity and report back to the Name Node"), and the block report is
//! the NameNode's only source of truth about replica locations.

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;

use hl_common::prelude::*;

use crate::block::{
    BlockId, BlockPayload, IncrementalBlockReport, ReplicaMeta, StoredBlock, FIRST_GEN_STAMP,
};

/// One DataNode's state.
#[derive(Debug, Clone)]
pub struct DataNode {
    /// Which physical node this daemon runs on.
    pub node: NodeId,
    /// Disk capacity in bytes.
    pub capacity: u64,
    /// Whether the daemon process is up.
    pub alive: bool,
    blocks: BTreeMap<BlockId, StoredBlock>,
    /// Replicas stored or re-stamped since the last drained delta report.
    pending_received: BTreeSet<BlockId>,
    /// Replicas dropped since the last drained delta report.
    pending_deleted: BTreeSet<BlockId>,
}

/// Summary of a block scanner pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanReport {
    /// Blocks whose checksums verified clean.
    pub clean: usize,
    /// Blocks found corrupt (now quarantined — removed from storage).
    pub corrupt: Vec<BlockId>,
    /// Bytes the scanner had to read.
    pub bytes_scanned: u64,
}

impl DataNode {
    /// A fresh, empty, live DataNode.
    pub fn new(node: NodeId, capacity: u64) -> Self {
        DataNode {
            node,
            capacity,
            alive: true,
            blocks: BTreeMap::new(),
            pending_received: BTreeSet::new(),
            pending_deleted: BTreeSet::new(),
        }
    }

    /// Store a replica stamped with [`FIRST_GEN_STAMP`]. Fails when the
    /// disk is full or the daemon is down.
    pub fn store_block(&mut self, id: BlockId, payload: BlockPayload) -> Result<()> {
        self.store_block_stamped(id, payload, FIRST_GEN_STAMP)
    }

    /// Store a replica under an explicit generation stamp (the pipeline
    /// write path). Fails when the disk is full or the daemon is down.
    pub fn store_block_stamped(
        &mut self,
        id: BlockId,
        payload: BlockPayload,
        gen_stamp: u64,
    ) -> Result<()> {
        if !self.alive {
            return Err(HlError::DaemonDown(format!("datanode/{}", self.node)));
        }
        let len = payload.len();
        if self.used_bytes() + len > self.capacity {
            return Err(HlError::Io(format!(
                "datanode/{}: disk full ({} used of {})",
                self.node,
                self.used_bytes(),
                self.capacity
            )));
        }
        self.blocks.insert(id, StoredBlock::with_gen_stamp(id, payload, gen_stamp));
        self.pending_received.insert(id);
        self.pending_deleted.remove(&id);
        Ok(())
    }

    /// Re-stamp a held replica after pipeline recovery. Returns false when
    /// the daemon is down or the replica is absent (the caller then treats
    /// this node as lost to the pipeline too).
    pub fn update_gen_stamp(&mut self, id: BlockId, gen_stamp: u64) -> bool {
        if !self.alive {
            return false;
        }
        match self.blocks.get_mut(&id) {
            Some(stored) => {
                stored.gen_stamp = gen_stamp;
                // A re-stamp must reach the NameNode like a fresh receipt,
                // or it would invalidate this replica at the next report.
                self.pending_received.insert(id);
                true
            }
            None => false,
        }
    }

    /// The generation stamp this node holds for a replica, if present.
    pub fn gen_stamp_of(&self, id: BlockId) -> Option<u64> {
        self.blocks.get(&id).map(|s| s.gen_stamp)
    }

    /// Read a replica's bytes, verifying checksums.
    pub fn read_block(&self, id: BlockId) -> Result<Bytes> {
        if !self.alive {
            return Err(HlError::DaemonDown(format!("datanode/{}", self.node)));
        }
        match self.blocks.get(&id) {
            Some(stored) => stored.read_verified(),
            None => Err(HlError::MissingBlock { block_id: id.0, path: String::new() }),
        }
    }

    /// The replica's payload (for replication pipelines), unverified.
    pub fn payload(&self, id: BlockId) -> Option<&BlockPayload> {
        self.blocks.get(&id).map(|s| &s.payload)
    }

    /// Does this node hold the block?
    pub fn has_block(&self, id: BlockId) -> bool {
        self.blocks.contains_key(&id)
    }

    /// Drop a replica (NameNode invalidation command).
    pub fn delete_block(&mut self, id: BlockId) -> bool {
        let deleted = self.blocks.remove(&id).is_some();
        if deleted {
            self.pending_received.remove(&id);
            self.pending_deleted.insert(id);
        }
        deleted
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> u64 {
        self.blocks.values().map(|b| b.payload.len()).sum()
    }

    /// Remaining capacity.
    pub fn free_bytes(&self) -> u64 {
        self.capacity.saturating_sub(self.used_bytes())
    }

    /// Number of replicas held.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The block report: every replica's id, length, and generation stamp,
    /// in id order. A full report is a superset of every pending delta, so
    /// callers that just sent one should [`Self::drain_incremental`] and
    /// discard the result (the NameNode treats leftovers as no-ops anyway).
    pub fn block_report(&self) -> Vec<ReplicaMeta> {
        self.blocks
            .iter()
            .map(|(id, b)| ReplicaMeta { id: *id, len: b.payload.len(), gen_stamp: b.gen_stamp })
            .collect()
    }

    /// Drain the delta report accumulated since the last drain: replicas
    /// received (reported with their *current* length and stamp — a block
    /// received then deleted between drains appears only as deleted) and
    /// replicas dropped. Returns `None` when the daemon is down or there
    /// is nothing to tell, so heartbeats stay message-free in the steady
    /// state.
    pub fn drain_incremental(&mut self) -> Option<IncrementalBlockReport> {
        if !self.alive || (self.pending_received.is_empty() && self.pending_deleted.is_empty()) {
            return None;
        }
        let received = self
            .pending_received
            .iter()
            .filter_map(|id| {
                self.blocks.get(id).map(|b| ReplicaMeta {
                    id: *id,
                    len: b.payload.len(),
                    gen_stamp: b.gen_stamp,
                })
            })
            .collect();
        let deleted = self.pending_deleted.iter().copied().collect();
        self.pending_received.clear();
        self.pending_deleted.clear();
        Some(IncrementalBlockReport { received, deleted })
    }

    /// Full integrity scan: verify every replica's checksums, quarantine
    /// corrupt ones. This is what a restarted DataNode does before its
    /// first block report.
    pub fn scan_blocks(&mut self) -> ScanReport {
        let mut corrupt = Vec::new();
        let mut bytes_scanned = 0;
        for (id, stored) in &self.blocks {
            bytes_scanned += stored.payload.len();
            if stored.payload.verify().is_some() {
                corrupt.push(*id);
            }
        }
        for id in &corrupt {
            self.blocks.remove(id);
            self.pending_received.remove(id);
            self.pending_deleted.insert(*id);
        }
        ScanReport { clean: self.blocks.len(), corrupt, bytes_scanned }
    }

    /// Virtual time the startup integrity scan takes at `disk_bw` bytes/s.
    pub fn scan_duration(&self, disk_bw: u64) -> SimDuration {
        SimDuration::for_transfer(self.used_bytes(), disk_bw)
    }

    /// Kill the daemon process (blocks stay on disk — this is a process
    /// crash, not a disk loss).
    pub fn crash(&mut self) {
        self.alive = false;
    }

    /// Restart the daemon.
    pub fn restart(&mut self) {
        self.alive = true;
    }

    /// Wipe the disk too (node reimaged / scratch purged by the scheduler).
    pub fn wipe(&mut self) {
        let ids: Vec<BlockId> = self.blocks.keys().copied().collect();
        self.blocks.clear();
        self.pending_received.clear();
        self.pending_deleted.extend(ids);
    }

    /// Test/fault-injection helper: corrupt one byte of a stored replica
    /// behind the checksums' back. Returns false if absent or synthetic.
    pub fn corrupt_block(&mut self, id: BlockId, byte_offset: usize) -> bool {
        match self.blocks.get_mut(&id) {
            Some(StoredBlock { payload: BlockPayload::Real { data, .. }, .. }) => {
                if data.is_empty() {
                    return false;
                }
                let mut raw = data.to_vec();
                let off = byte_offset % raw.len();
                raw[off] ^= 0xA5;
                *data = Bytes::from(raw);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_common::units::ByteSize;

    fn dn() -> DataNode {
        DataNode::new(NodeId(0), 10 * ByteSize::MIB)
    }

    #[test]
    fn store_read_round_trip() {
        let mut d = dn();
        d.store_block(BlockId(1), BlockPayload::real(vec![9u8; 4096])).unwrap();
        assert!(d.has_block(BlockId(1)));
        assert_eq!(d.read_block(BlockId(1)).unwrap().len(), 4096);
        assert_eq!(d.used_bytes(), 4096);
        assert_eq!(d.num_blocks(), 1);
    }

    #[test]
    fn disk_full_is_an_error() {
        let mut d = DataNode::new(NodeId(0), 1000);
        d.store_block(BlockId(1), BlockPayload::real(vec![0u8; 800])).unwrap();
        assert!(matches!(
            d.store_block(BlockId(2), BlockPayload::real(vec![0u8; 300])),
            Err(HlError::Io(_))
        ));
        // Synthetic payloads also count against capacity.
        assert!(d.store_block(BlockId(3), BlockPayload::synthetic(300)).is_err());
        assert!(d.store_block(BlockId(4), BlockPayload::synthetic(200)).is_ok());
    }

    #[test]
    fn dead_daemon_rejects_io() {
        let mut d = dn();
        d.store_block(BlockId(1), BlockPayload::real(vec![1u8; 10])).unwrap();
        d.crash();
        assert!(matches!(d.read_block(BlockId(1)), Err(HlError::DaemonDown(_))));
        assert!(matches!(
            d.store_block(BlockId(2), BlockPayload::real(vec![1u8; 10])),
            Err(HlError::DaemonDown(_))
        ));
        d.restart();
        // Blocks survived the process crash.
        assert_eq!(d.read_block(BlockId(1)).unwrap().len(), 10);
    }

    #[test]
    fn missing_block_error() {
        let d = dn();
        assert!(matches!(
            d.read_block(BlockId(404)),
            Err(HlError::MissingBlock { block_id: 404, .. })
        ));
    }

    #[test]
    fn block_report_lists_everything_in_order() {
        let mut d = dn();
        d.store_block(BlockId(5), BlockPayload::real(vec![0u8; 100])).unwrap();
        d.store_block_stamped(BlockId(2), BlockPayload::synthetic(50), 1007).unwrap();
        assert_eq!(
            d.block_report(),
            vec![
                ReplicaMeta { id: BlockId(2), len: 50, gen_stamp: 1007 },
                ReplicaMeta { id: BlockId(5), len: 100, gen_stamp: FIRST_GEN_STAMP },
            ]
        );
    }

    #[test]
    fn gen_stamp_updates_require_a_live_daemon_and_a_replica() {
        let mut d = dn();
        d.store_block(BlockId(1), BlockPayload::real(vec![0u8; 10])).unwrap();
        assert_eq!(d.gen_stamp_of(BlockId(1)), Some(FIRST_GEN_STAMP));
        assert!(d.update_gen_stamp(BlockId(1), 1001));
        assert_eq!(d.gen_stamp_of(BlockId(1)), Some(1001));
        assert!(!d.update_gen_stamp(BlockId(404), 1002));
        d.crash();
        assert!(!d.update_gen_stamp(BlockId(1), 1003));
        assert_eq!(d.gen_stamp_of(BlockId(1)), Some(1001));
    }

    #[test]
    fn scanner_quarantines_corruption() {
        let mut d = dn();
        d.store_block(BlockId(1), BlockPayload::real(vec![1u8; 1024])).unwrap();
        d.store_block(BlockId(2), BlockPayload::real(vec![2u8; 1024])).unwrap();
        d.store_block(BlockId(3), BlockPayload::synthetic(1024)).unwrap();
        assert!(d.corrupt_block(BlockId(2), 700));
        let report = d.scan_blocks();
        assert_eq!(report.corrupt, vec![BlockId(2)]);
        assert_eq!(report.clean, 2);
        assert_eq!(report.bytes_scanned, 3 * 1024);
        assert!(!d.has_block(BlockId(2)));
        // Corrupting a synthetic or missing block is a no-op.
        assert!(!d.corrupt_block(BlockId(3), 0));
        assert!(!d.corrupt_block(BlockId(404), 0));
    }

    #[test]
    fn scan_duration_scales_with_stored_bytes() {
        let mut d = DataNode::new(NodeId(0), 900 * ByteSize::GIB);
        // ~700 GB of synthetic data at 120 MiB/s should take ~1.66 hours —
        // the right order for the paper's "fifteen minutes" once divided
        // across a cluster's worth of smaller per-node holdings.
        d.store_block(BlockId(1), BlockPayload::synthetic(700 * ByteSize::GIB)).unwrap();
        let t = d.scan_duration(120 * ByteSize::MIB);
        assert!(t > SimDuration::from_mins(90) && t < SimDuration::from_mins(120));
    }

    #[test]
    fn incremental_deltas_track_changes_between_drains() {
        let mut d = dn();
        assert!(d.drain_incremental().is_none(), "nothing to report on a fresh node");

        d.store_block(BlockId(1), BlockPayload::real(vec![1u8; 10])).unwrap();
        d.store_block_stamped(BlockId(2), BlockPayload::synthetic(20), 1005).unwrap();
        d.store_block(BlockId(3), BlockPayload::real(vec![3u8; 30])).unwrap();
        // Block 3 vanishes before the drain: deleted-only, never received.
        assert!(d.delete_block(BlockId(3)));
        // Block 2 got re-stamped after pipeline recovery: current stamp wins.
        assert!(d.update_gen_stamp(BlockId(2), 1009));
        let delta = d.drain_incremental().unwrap();
        assert_eq!(
            delta.received,
            vec![
                ReplicaMeta { id: BlockId(1), len: 10, gen_stamp: FIRST_GEN_STAMP },
                ReplicaMeta { id: BlockId(2), len: 20, gen_stamp: 1009 },
            ]
        );
        assert_eq!(delta.deleted, vec![BlockId(3)]);

        // Draining resets the sets; a quiet period reports nothing.
        assert!(d.drain_incremental().is_none());

        // Deletions and quarantined corruption both surface as deleted.
        assert!(d.delete_block(BlockId(1)));
        d.store_block(BlockId(4), BlockPayload::real(vec![4u8; 1024])).unwrap();
        d.corrupt_block(BlockId(4), 100);
        d.scan_blocks();
        let delta = d.drain_incremental().unwrap();
        assert!(delta.received.is_empty());
        assert_eq!(delta.deleted, vec![BlockId(1), BlockId(4)]);

        // A downed daemon stays silent and keeps its pending deltas.
        d.store_block(BlockId(5), BlockPayload::synthetic(5)).unwrap();
        d.crash();
        assert!(d.drain_incremental().is_none());
        d.restart();
        assert_eq!(d.drain_incremental().unwrap().received.len(), 1);
    }

    #[test]
    fn wipe_clears_storage() {
        let mut d = dn();
        d.store_block(BlockId(1), BlockPayload::real(vec![1u8; 10])).unwrap();
        d.wipe();
        assert_eq!(d.num_blocks(), 0);
        assert_eq!(d.used_bytes(), 0);
    }
}
