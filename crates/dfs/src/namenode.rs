//! The NameNode: RAM-resident namespace + block map, heartbeat tracking,
//! safe mode, and the replication monitor.
//!
//! This is the center of the paper's Figure 2: "DataNodes report block
//! information to NameNode", "Block metadata lives in memory", and the
//! JobTracker "receives block-level information" from here. It is written
//! as a **pure state machine** — methods take the current [`SimTime`] and
//! return commands — so `hl-core` can drive it from the event queue and
//! unit tests can drive it directly.

use std::collections::{BTreeMap, BTreeSet};

use hl_common::config::keys;
use hl_common::prelude::*;
use hl_metrics::MetricsRegistry;

use crate::block::{BlockId, ReplicaMeta, FIRST_GEN_STAMP};
use crate::editlog::{EditLog, EditOp};
use crate::lease::{Lease, LeaseManager};
use crate::namespace::{FileStatus, Namespace};
use crate::placement::{self, Candidate};
use crate::safemode::SafeMode;

/// Everything the NameNode knows about one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    /// Target replica count (from the owning file).
    pub expected_replication: u32,
    /// Block length in bytes.
    pub len: u64,
    /// Live replica locations, per the latest reports.
    pub locations: BTreeSet<NodeId>,
    /// Re-replications currently in flight (prevents duplicate work).
    pub pending_replicas: u32,
    /// Current generation stamp; replicas reporting an older stamp were
    /// left behind by pipeline recovery and get invalidated.
    pub gen_stamp: u64,
}

/// Per-DataNode registration state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataNodeInfo {
    /// Last heartbeat time.
    pub last_heartbeat: SimTime,
    /// Free disk as of the last heartbeat.
    pub free_bytes: u64,
    /// Considered alive by the heartbeat monitor.
    pub alive: bool,
}

/// A command the NameNode hands back to the cluster driver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings follow the variant docs directly
pub enum DnCommand {
    /// Copy `block` from `from` to `to` (re-replication).
    Replicate { block: BlockId, from: NodeId, to: NodeId },
    /// Delete an excess/invalidated replica on `node`.
    Invalidate { block: BlockId, node: NodeId },
}

/// The NameNode.
#[derive(Debug, Clone)]
pub struct NameNode {
    namespace: Namespace,
    /// Journal of namespace mutations since the last checkpoint.
    pub editlog: EditLog,
    fsimage: Namespace,
    blocks: BTreeMap<BlockId, BlockInfo>,
    datanodes: BTreeMap<NodeId, DataNodeInfo>,
    decommissioning: BTreeSet<NodeId>,
    next_block_id: u64,
    next_gen_stamp: u64,
    /// Stale/garbage replicas queued for invalidation, drained by the
    /// replication monitor.
    invalidations: Vec<(BlockId, NodeId)>,
    leases: LeaseManager,
    /// Safe-mode state machine.
    pub safemode: SafeMode,
    /// Instruments for the "namenode" daemon (RPC ops, edit-log ops,
    /// safe-mode transitions, namespace/replication gauges).
    pub metrics: MetricsRegistry,
    topology: Topology,
    heartbeat_interval: SimDuration,
    dead_after: SimDuration,
    default_replication: u32,
    default_block_size: u64,
}

impl NameNode {
    /// Start a NameNode over `topology` with course-default configuration.
    pub fn new(config: &Configuration, topology: Topology) -> Result<Self> {
        let threshold = config.get_f64(keys::DFS_SAFEMODE_THRESHOLD, 0.999)?;
        let extension =
            SimDuration::from_secs(config.get_u64(keys::DFS_SAFEMODE_EXTENSION_SECS, 30)?);
        let heartbeat_secs = config.get_u64(keys::DFS_HEARTBEAT_SECS, 3)?;
        let dead_after_beats = config.get_u64(keys::DFS_HEARTBEAT_DEAD_AFTER, 200)?;
        let lease_soft =
            SimDuration::from_secs(config.get_u64(keys::DFS_LEASE_SOFT_LIMIT_SECS, 60)?);
        let lease_hard =
            SimDuration::from_secs(config.get_u64(keys::DFS_LEASE_HARD_LIMIT_SECS, 300)?);
        Ok(NameNode {
            namespace: Namespace::new(),
            editlog: EditLog::new(),
            fsimage: Namespace::new(),
            blocks: BTreeMap::new(),
            datanodes: BTreeMap::new(),
            decommissioning: BTreeSet::new(),
            next_block_id: 1,
            next_gen_stamp: FIRST_GEN_STAMP,
            invalidations: Vec::new(),
            leases: LeaseManager::new(lease_soft, lease_hard),
            safemode: SafeMode::new(threshold, extension),
            metrics: MetricsRegistry::new(),
            topology,
            heartbeat_interval: SimDuration::from_secs(heartbeat_secs),
            dead_after: SimDuration::from_secs(heartbeat_secs * dead_after_beats),
            default_replication: config.get_u32(keys::DFS_REPLICATION, 3)?,
            default_block_size: config.get_u64(keys::DFS_BLOCK_SIZE, 64 * 1024 * 1024)?,
        })
    }

    /// Heartbeat period DataNodes should use.
    pub fn heartbeat_interval(&self) -> SimDuration {
        self.heartbeat_interval
    }

    /// Default replication for new files.
    pub fn default_replication(&self) -> u32 {
        self.default_replication
    }

    /// Default block size for new files.
    pub fn default_block_size(&self) -> u64 {
        self.default_block_size
    }

    /// The namespace, read-only (fsck, listings, input splits).
    pub fn namespace(&self) -> &Namespace {
        &self.namespace
    }

    /// Block info, read-only.
    pub fn block(&self, id: BlockId) -> Option<&BlockInfo> {
        self.blocks.get(&id)
    }

    /// Compact manifest of the whole block map — `(block, len,
    /// expected_replication)` in id order. Location-independent, so a
    /// pre-crash manifest can be compared against a journal-recovered
    /// NameNode whose replica locations are still empty (the chaos
    /// harness's crash-recovery oracle).
    pub fn block_manifest(&self) -> Vec<(BlockId, u64, u32)> {
        self.blocks.iter().map(|(&id, b)| (id, b.len, b.expected_replication)).collect()
    }

    /// Live replica locations of a block (empty when missing).
    pub fn block_locations(&self, id: BlockId) -> Vec<NodeId> {
        self.blocks.get(&id).map(|b| b.locations.iter().copied().collect()).unwrap_or_default()
    }

    /// Append one op to the edit log and count it.
    fn journal(&mut self, op: EditOp) {
        self.editlog.append(op);
        self.metrics.incr("namenode", "editlog.ops", 1);
    }

    fn guard_safemode(&self) -> Result<()> {
        if self.safemode.is_on() {
            let (reported, expected) = self.block_census();
            Err(HlError::SafeMode(self.safemode.status(reported, expected)))
        } else {
            Ok(())
        }
    }

    // ---------------------------------------------------------------- DNs

    /// A DataNode registers (daemon start).
    pub fn register_datanode(&mut self, now: SimTime, node: NodeId, free_bytes: u64) {
        self.datanodes.insert(node, DataNodeInfo { last_heartbeat: now, free_bytes, alive: true });
    }

    /// Heartbeat from a DataNode. Revives nodes the monitor had declared
    /// dead (their replicas come back via the next block report).
    pub fn heartbeat(&mut self, now: SimTime, node: NodeId, free_bytes: u64) {
        self.metrics.incr("namenode", "rpc.heartbeat", 1);
        let info = self.datanodes.entry(node).or_insert(DataNodeInfo {
            last_heartbeat: now,
            free_bytes,
            alive: true,
        });
        info.last_heartbeat = now;
        info.free_bytes = free_bytes;
        info.alive = true;
    }

    /// Remove a DataNode from the cluster entirely (the operator pulled it
    /// from the include file after decommissioning). Its replicas are
    /// forgotten and it stops counting as live or draining.
    pub fn unregister_datanode(&mut self, node: NodeId) {
        self.datanodes.remove(&node);
        self.decommissioning.remove(&node);
        for b in self.blocks.values_mut() {
            b.locations.remove(&node);
        }
    }

    /// Update a DataNode's free-space figure without touching its
    /// heartbeat clock (used on the synchronous write path).
    pub fn update_free_space(&mut self, node: NodeId, free_bytes: u64) {
        if let Some(info) = self.datanodes.get_mut(&node) {
            info.free_bytes = free_bytes;
        }
    }

    /// Sweep for dead DataNodes; removes their replicas from the block map.
    /// Returns the newly-dead nodes.
    pub fn check_heartbeats(&mut self, now: SimTime) -> Vec<NodeId> {
        let mut newly_dead = Vec::new();
        for (&node, info) in self.datanodes.iter_mut() {
            if info.alive && now.since(info.last_heartbeat) > self.dead_after {
                info.alive = false;
                newly_dead.push(node);
            }
        }
        for &node in &newly_dead {
            for b in self.blocks.values_mut() {
                b.locations.remove(&node);
            }
        }
        if !newly_dead.is_empty() {
            self.metrics.incr("namenode", "datanodes.declared_dead", newly_dead.len() as u64);
        }
        // Losing replicas can regress the safe-mode census.
        let (reported, expected) = self.block_census();
        if self.safemode.update(now, reported, expected) {
            self.metrics.incr("namenode", "safemode.exited", 1);
        }
        // The lease monitor rides the same sweep (its SimTime clock tick).
        self.check_leases(now);
        newly_dead
    }

    /// Live DataNodes.
    pub fn live_datanodes(&self) -> Vec<NodeId> {
        self.datanodes.iter().filter(|(_, i)| i.alive).map(|(&n, _)| n).collect()
    }

    /// Process a full block report from `node`. Replicas carrying a stale
    /// generation stamp (pipeline recovery happened without this node) are
    /// not counted as locations and get queued for invalidation, as do
    /// replicas of blocks the NameNode no longer knows (deleted while the
    /// node was down). Returns `true` when this report (or its safe-mode
    /// consequence) exits safe mode.
    pub fn process_block_report(
        &mut self,
        now: SimTime,
        node: NodeId,
        report: &[ReplicaMeta],
    ) -> bool {
        self.metrics.incr("namenode", "rpc.block_report", 1);
        let reported: BTreeMap<BlockId, u64> = report.iter().map(|r| (r.id, r.gen_stamp)).collect();
        for (id, info) in self.blocks.iter_mut() {
            match reported.get(id) {
                Some(&gs) if gs < info.gen_stamp => {
                    info.locations.remove(&node);
                    self.invalidations.push((*id, node));
                }
                Some(_) => {
                    info.locations.insert(node);
                }
                None => {
                    info.locations.remove(&node);
                }
            }
        }
        for r in report {
            if !self.blocks.contains_key(&r.id) {
                self.invalidations.push((r.id, node));
            }
        }
        let (reported, expected) = self.block_census();
        let exited = self.safemode.update(now, reported, expected);
        if exited {
            self.metrics.incr("namenode", "safemode.exited", 1);
        }
        exited
    }

    /// A DataNode confirms receipt of one block (pipeline write or
    /// completed re-replication).
    pub fn block_received(&mut self, now: SimTime, node: NodeId, id: BlockId) -> Vec<DnCommand> {
        self.metrics.incr("namenode", "rpc.block_received", 1);
        let mut commands = Vec::new();
        if let Some(info) = self.blocks.get_mut(&id) {
            info.locations.insert(node);
            info.pending_replicas = info.pending_replicas.saturating_sub(1);
            // Over-replication: evict replicas on decommissioning nodes
            // first (that is the whole point of the drain), then the
            // highest-id extra that isn't the one just written.
            while info.locations.len() as u32 > info.expected_replication {
                let victim = info
                    .locations
                    .iter()
                    .find(|n| self.decommissioning.contains(n) && **n != node)
                    .or_else(|| info.locations.iter().rev().find(|&&n| n != node))
                    .copied()
                    .unwrap_or(node);
                info.locations.remove(&victim);
                commands.push(DnCommand::Invalidate { block: id, node: victim });
            }
        }
        let (reported, expected) = self.block_census();
        if self.safemode.update(now, reported, expected) {
            self.metrics.incr("namenode", "safemode.exited", 1);
        }
        commands
    }

    /// `(blocks with ≥1 reported replica, total blocks)`.
    pub fn block_census(&self) -> (usize, usize) {
        let reported = self.blocks.values().filter(|b| !b.locations.is_empty()).count();
        (reported, self.blocks.len())
    }

    // ---------------------------------------------------------- namespace

    /// `hadoop fs -mkdir -p`.
    pub fn mkdirs(&mut self, path: &str) -> Result<()> {
        self.metrics.incr("namenode", "rpc.mkdirs", 1);
        self.guard_safemode()?;
        self.namespace.mkdirs(path)?;
        self.journal(EditOp::Mkdirs { path: path.to_string() });
        Ok(())
    }

    /// Create an (incomplete) file; `holder` is granted the write lease.
    pub fn create_file(
        &mut self,
        now: SimTime,
        path: &str,
        replication: Option<u32>,
        block_size: Option<u64>,
        holder: &str,
    ) -> Result<()> {
        self.metrics.incr("namenode", "rpc.create_file", 1);
        self.guard_safemode()?;
        let replication = replication.unwrap_or(self.default_replication);
        let block_size = block_size.unwrap_or(self.default_block_size);
        self.namespace.create_file(path, replication, block_size, now)?;
        self.journal(EditOp::Create { path: path.to_string(), replication, block_size, at: now });
        self.leases.acquire(now, path, holder);
        Ok(())
    }

    /// Allocate the next block of `path` and choose its replica targets.
    /// Also renews the writer's lease — block allocation is progress.
    pub fn add_block(
        &mut self,
        now: SimTime,
        path: &str,
        len: u64,
        writer: Option<NodeId>,
    ) -> Result<(BlockId, Vec<NodeId>)> {
        self.metrics.incr("namenode", "rpc.add_block", 1);
        self.guard_safemode()?;
        let file = self.namespace.file(path)?;
        let (replication, block_size) = (file.replication, file.block_size);

        let candidates: Vec<Candidate> = self
            .datanodes
            .iter()
            .filter(|(n, i)| i.alive && !self.decommissioning.contains(n))
            .map(|(&node, i)| Candidate { node, free_bytes: i.free_bytes })
            .collect();
        let id = BlockId(self.next_block_id);
        let targets = placement::choose_targets(
            &self.topology,
            &candidates,
            writer,
            replication,
            len.min(block_size),
            id.0,
        );
        if targets.is_empty() {
            return Err(HlError::InsufficientReplication { wanted: replication, available: 0 });
        }
        self.next_block_id += 1;
        let gen_stamp = self.next_gen_stamp;
        self.next_gen_stamp += 1;
        self.namespace.append_block(path, id, len)?;
        self.journal(EditOp::AddBlock { path: path.to_string(), block: id, len, gen_stamp });
        self.blocks.insert(
            id,
            BlockInfo {
                expected_replication: replication,
                len,
                locations: BTreeSet::new(),
                pending_replicas: 0,
                gen_stamp,
            },
        );
        self.leases.renew(now, path);
        Ok((id, targets))
    }

    /// Bump a block's generation stamp (pipeline recovery: a DataNode fell
    /// out of the write pipeline). The new stamp is journaled; replicas
    /// still carrying the old stamp are invalidated when they next report.
    /// Counts as writer progress, so the lease renews too.
    pub fn bump_gen_stamp(&mut self, now: SimTime, path: &str, id: BlockId) -> Result<u64> {
        self.metrics.incr("namenode", "rpc.bump_gen_stamp", 1);
        let info = self
            .blocks
            .get_mut(&id)
            .ok_or_else(|| HlError::Internal(format!("gen-stamp bump of unknown {id}")))?;
        let gen_stamp = self.next_gen_stamp;
        self.next_gen_stamp += 1;
        info.gen_stamp = gen_stamp;
        self.journal(EditOp::BumpGenStamp { block: id, gen_stamp });
        self.leases.renew(now, path);
        Ok(gen_stamp)
    }

    /// Close a file and release its write lease.
    pub fn complete_file(&mut self, path: &str) -> Result<()> {
        self.metrics.incr("namenode", "rpc.complete_file", 1);
        self.guard_safemode()?;
        self.namespace.complete_file(path)?;
        self.journal(EditOp::Close { path: path.to_string() });
        self.leases.release(path);
        Ok(())
    }

    /// Delete a path; replicas of freed blocks get invalidation commands.
    pub fn delete(&mut self, path: &str, recursive: bool) -> Result<Vec<DnCommand>> {
        self.metrics.incr("namenode", "rpc.delete", 1);
        self.guard_safemode()?;
        let freed = self.namespace.delete(path, recursive)?;
        self.journal(EditOp::Delete { path: path.to_string(), recursive });
        self.leases.release_under(path);
        let mut commands = Vec::new();
        for id in freed {
            if let Some(info) = self.blocks.remove(&id) {
                for node in info.locations {
                    commands.push(DnCommand::Invalidate { block: id, node });
                }
            }
        }
        Ok(commands)
    }

    /// `hadoop fs -setrep`: change a file's target replication. Raising it
    /// queues re-replication; lowering it queues excess-replica
    /// invalidation (both handled by the next monitor pass).
    pub fn set_replication(&mut self, path: &str, replication: u32) -> Result<Vec<BlockId>> {
        self.metrics.incr("namenode", "rpc.set_replication", 1);
        self.guard_safemode()?;
        if replication == 0 {
            return Err(HlError::Config("replication must be >= 1".into()));
        }
        let file = self.namespace.file_mut(path)?;
        file.replication = replication;
        let blocks = file.blocks.clone();
        for id in &blocks {
            if let Some(info) = self.blocks.get_mut(id) {
                info.expected_replication = replication;
            }
        }
        self.journal(EditOp::SetReplication { path: path.to_string(), replication });
        Ok(blocks)
    }

    /// Rename a path (an open file's lease follows it).
    pub fn rename(&mut self, src: &str, dst: &str) -> Result<()> {
        self.metrics.incr("namenode", "rpc.rename", 1);
        self.guard_safemode()?;
        self.namespace.rename(src, dst)?;
        self.journal(EditOp::Rename { src: src.to_string(), dst: dst.to_string() });
        self.leases.rename(src, dst);
        Ok(())
    }

    /// Directory listing.
    pub fn list(&self, path: &str) -> Result<Vec<FileStatus>> {
        self.namespace.list(path)
    }

    // ------------------------------------------------------------- leases

    /// The write lease on `path`, if the file is open for write.
    pub fn lease(&self, path: &str) -> Option<&Lease> {
        self.leases.lease(path)
    }

    /// Every outstanding write lease, path-ordered (fsck's open-file view).
    pub fn open_files(&self) -> Vec<&Lease> {
        self.leases.leases().collect()
    }

    /// Explicit `recoverLease` (the admin/shell verb). Returns `Ok(true)`
    /// when the file is already closed, `Ok(false)` when recovery was
    /// started — the next lease check finalizes it.
    pub fn recover_lease(&mut self, path: &str) -> Result<bool> {
        self.metrics.incr("namenode", "rpc.recover_lease", 1);
        let file = self.namespace.file(path)?;
        if file.complete {
            self.leases.release(path);
            return Ok(true);
        }
        if !self.leases.start_recovery(path) {
            // Open file without a lease shouldn't happen; self-heal it.
            self.leases.acquire(SimTime::ZERO, path, "recovery");
            self.leases.start_recovery(path);
        }
        Ok(false)
    }

    /// One lease-monitor tick: advance expiry state machines and finalize
    /// files whose recovery is due. Idles during safe mode (like the real
    /// LeaseManager — no namespace mutations before the image is safe).
    /// Returns the paths finalized this tick.
    pub fn check_leases(&mut self, now: SimTime) -> Vec<String> {
        if self.safemode.is_on() {
            return Vec::new();
        }
        let due = self.leases.check(now);
        let mut finalized = Vec::new();
        for path in due {
            if self.finalize_lease(&path) {
                finalized.push(path);
            }
        }
        if !finalized.is_empty() {
            self.metrics.incr("namenode", "leases.recovered", finalized.len() as u64);
        }
        finalized
    }

    /// Finalize one crashed writer's file: drop trailing blocks no
    /// DataNode ever confirmed, close at the last consistent length, and
    /// release the lease. Returns false when the file vanished meanwhile.
    fn finalize_lease(&mut self, path: &str) -> bool {
        let Ok(file) = self.namespace.file(path) else {
            self.leases.release(path);
            return false;
        };
        if file.complete {
            self.leases.release(path);
            return true;
        }
        // Walk trailing blocks back until one has a confirmed replica.
        // Only the tail can be unconfirmed: pipelines write in order.
        let mut tail: Vec<BlockId> = file.blocks.clone();
        while let Some(&last) = tail.last() {
            let confirmed = self
                .blocks
                .get(&last)
                .map(|b| !b.locations.is_empty() || b.pending_replicas > 0)
                .unwrap_or(false);
            if confirmed {
                break;
            }
            let len = self.blocks.get(&last).map(|b| b.len).unwrap_or(0);
            if self.namespace.abandon_block(path, last, len).is_err() {
                break;
            }
            self.journal(EditOp::AbandonBlock { path: path.to_string(), block: last, len });
            self.blocks.remove(&last);
            tail.pop();
        }
        if self.namespace.complete_file(path).is_ok() {
            self.journal(EditOp::Close { path: path.to_string() });
        }
        self.leases.release(path);
        true
    }

    // ------------------------------------------------------- replication

    /// Blocks with fewer *counted* replicas than expected (and how short).
    /// Replicas on decommissioning nodes are still readable but no longer
    /// count toward the target, so starting a decommission immediately
    /// queues its blocks for copying — HDFS's drain semantics.
    pub fn under_replicated(&self) -> Vec<(BlockId, u32, u32)> {
        self.blocks
            .iter()
            .filter_map(|(&id, b)| {
                let counted =
                    b.locations.iter().filter(|n| !self.decommissioning.contains(n)).count() as u32;
                let have = counted + b.pending_replicas;
                (have < b.expected_replication && !b.locations.is_empty()).then_some((
                    id,
                    counted,
                    b.expected_replication,
                ))
            })
            .collect()
    }

    /// Blocks with zero live replicas — data loss until a holder returns.
    pub fn missing_blocks(&self) -> Vec<BlockId> {
        self.blocks.iter().filter(|(_, b)| b.locations.is_empty()).map(|(&id, _)| id).collect()
    }

    /// One replication-monitor pass: emit copy commands for
    /// under-replicated blocks (bounded per pass, like the real monitor).
    pub fn replication_work(&mut self, _now: SimTime, max_tasks: usize) -> Vec<DnCommand> {
        if self.safemode.is_on() {
            return Vec::new(); // the monitor idles during safe mode
        }
        let live: Vec<NodeId> = self.live_datanodes();
        let mut commands = Vec::new();
        // Stale-genstamp and garbage replicas first: deletes are cheap and
        // every pass drains the whole queue (deduplicated — a replica may
        // have been reported more than once between passes).
        let mut pending: Vec<(BlockId, NodeId)> = std::mem::take(&mut self.invalidations);
        pending.sort_unstable();
        pending.dedup();
        for (block, node) in pending {
            commands.push(DnCommand::Invalidate { block, node });
        }
        let under: Vec<BlockId> =
            self.under_replicated().into_iter().map(|(id, _, _)| id).collect();
        for id in under {
            if commands.len() >= max_tasks {
                break;
            }
            // `under_replicated` iterates this map, but stay panic-free if a
            // concurrent mutation path ever drops the entry mid-pass.
            let Some(info) = self.blocks.get(&id) else { continue };
            let from = match info.locations.iter().next() {
                Some(&n) => n,
                None => continue,
            };
            let holders: BTreeSet<NodeId> = info.locations.clone();
            let candidates: Vec<Candidate> = live
                .iter()
                .filter(|n| !holders.contains(n) && !self.decommissioning.contains(*n))
                .map(|&node| Candidate { node, free_bytes: self.datanodes[&node].free_bytes })
                .collect();
            let targets =
                placement::choose_targets(&self.topology, &candidates, None, 1, info.len, id.0);
            if let Some(&to) = targets.first() {
                if let Some(info) = self.blocks.get_mut(&id) {
                    info.pending_replicas += 1;
                    commands.push(DnCommand::Replicate { block: id, from, to });
                }
            }
        }
        // Over-replication sweep (setrep-down, returned dead nodes): trim
        // highest-id excess replicas.
        let over: Vec<BlockId> = self
            .blocks
            .iter()
            .filter(|(_, b)| b.locations.len() as u32 > b.expected_replication)
            .map(|(&id, _)| id)
            .collect();
        for id in over {
            if commands.len() >= max_tasks {
                break;
            }
            let Some(info) = self.blocks.get_mut(&id) else { continue };
            while info.locations.len() as u32 > info.expected_replication {
                // The loop guard guarantees a last element; degrade anyway.
                let Some(&victim) = info.locations.iter().next_back() else { break };
                info.locations.remove(&victim);
                commands.push(DnCommand::Invalidate { block: id, node: victim });
            }
        }
        if !commands.is_empty() {
            self.metrics.incr("namenode", "replication.commands", commands.len() as u64);
        }
        commands
    }

    /// A scheduled re-replication failed (source died mid-copy); return
    /// the slot so the monitor can retry elsewhere.
    pub fn replication_failed(&mut self, id: BlockId) {
        if let Some(info) = self.blocks.get_mut(&id) {
            info.pending_replicas = info.pending_replicas.saturating_sub(1);
        }
    }

    /// Begin draining a DataNode: it stops receiving new blocks and its
    /// replicas stop counting toward replication targets, so the monitor
    /// copies them elsewhere. The node keeps serving reads while draining.
    pub fn start_decommission(&mut self, node: NodeId) {
        self.decommissioning.insert(node);
    }

    /// Abort a drain.
    pub fn cancel_decommission(&mut self, node: NodeId) {
        self.decommissioning.remove(&node);
    }

    /// Nodes currently draining.
    pub fn decommissioning_nodes(&self) -> Vec<NodeId> {
        self.decommissioning.iter().copied().collect()
    }

    /// True once every block that has a replica on `node` also has a full
    /// replica set elsewhere — the node may be removed.
    pub fn decommission_complete(&self, node: NodeId) -> bool {
        self.decommission_stuck_blocks(node).is_empty()
    }

    /// The blocks still pinning a draining `node`: they have a replica on
    /// it but not enough counted replicas elsewhere. What an operator
    /// staring at a wedged decommission actually needs to see.
    pub fn decommission_stuck_blocks(&self, node: NodeId) -> Vec<BlockId> {
        self.blocks
            .iter()
            .filter(|(_, b)| {
                if !b.locations.contains(&node) {
                    return false;
                }
                let elsewhere = b
                    .locations
                    .iter()
                    .filter(|n| **n != node && !self.decommissioning.contains(n))
                    .count() as u32;
                elsewhere < b.expected_replication.min(self.eligible_datanodes(node))
            })
            .map(|(&id, _)| id)
            .collect()
    }

    fn eligible_datanodes(&self, excluding: NodeId) -> u32 {
        self.datanodes
            .iter()
            .filter(|(n, i)| i.alive && **n != excluding && !self.decommissioning.contains(n))
            .count() as u32
    }

    // ------------------------------------------------------------ restart

    /// Checkpoint namespace to the fsimage and clear the edit log (what the
    /// secondary NameNode did for the course cluster nightly).
    pub fn checkpoint(&mut self) {
        self.fsimage = self.namespace.clone();
        self.editlog.checkpoint();
        self.metrics.incr("namenode", "checkpoints", 1);
    }

    /// Simulate a full NameNode restart: rebuild the namespace from
    /// fsimage + edit-log replay, forget all replica locations, and enter
    /// safe mode. Block reports must stream back in before the cluster is
    /// usable again.
    pub fn restart(&mut self, _now: SimTime) -> Result<()> {
        let mut rebuilt = self.fsimage.clone();
        self.editlog.replay(&mut rebuilt)?;
        debug_assert_eq!(rebuilt, self.namespace, "journal must reproduce live namespace");
        self.namespace = rebuilt;
        // Re-apply journaled generation stamps to the block map: stamps
        // bumped since the checkpoint must survive, or the restarted
        // NameNode would welcome stale replicas back at report time.
        for op in self.editlog.ops() {
            if let EditOp::BumpGenStamp { block, gen_stamp } = op {
                if let Some(info) = self.blocks.get_mut(block) {
                    info.gen_stamp = (*gen_stamp).max(info.gen_stamp);
                }
            }
        }
        self.invalidations.clear();
        for b in self.blocks.values_mut() {
            b.locations.clear();
            b.pending_replicas = 0;
        }
        for info in self.datanodes.values_mut() {
            info.alive = false;
        }
        self.safemode = SafeMode::new(self.safemode.threshold, self.safemode.extension);
        // Restart semantics: point-in-time gauges died with the process,
        // monotonic counters and histograms survive (no double-counting).
        self.metrics.restart_daemon("namenode");
        self.metrics.incr("namenode", "restarts", 1);
        self.metrics.incr("namenode", "safemode.entered", 1);
        Ok(())
    }

    /// Refresh the "namenode" gauges from live state. Called by the DFS
    /// aggregator just before every snapshot so the gauges reflect the
    /// namespace/replication picture at snapshot time.
    pub fn sample_gauges(&mut self) {
        fn g(n: usize) -> i64 {
            i64::try_from(n).unwrap_or(i64::MAX)
        }
        let (reported, total) = self.block_census();
        let under = g(self.under_replicated().len());
        let missing = g(self.missing_blocks().len());
        let open = g(self.open_files().len());
        let live = g(self.live_datanodes().len());
        let pending = g(self.editlog.len());
        let ram = i64::try_from(self.metadata_ram_bytes()).unwrap_or(i64::MAX);
        self.metrics.set_gauge("namenode", "blocks.total", g(total));
        self.metrics.set_gauge("namenode", "blocks.reported", g(reported));
        self.metrics.set_gauge("namenode", "blocks.under_replicated", under);
        self.metrics.set_gauge("namenode", "blocks.missing", missing);
        self.metrics.set_gauge("namenode", "leases.open", open);
        self.metrics.set_gauge("namenode", "datanodes.live", live);
        self.metrics.set_gauge("namenode", "safemode.on", i64::from(self.safemode.is_on()));
        self.metrics.set_gauge("namenode", "editlog.pending_ops", pending);
        self.metrics.set_gauge("namenode", "metadata.ram_bytes", ram);
    }

    /// Rough bytes of NameNode RAM the metadata occupies (the Figure 2
    /// "block metadata lives in memory" talking point, used by the fsck
    /// report). ~150 B per inode + ~(150 + 30·replicas) B per block, the
    /// folklore numbers for Hadoop 1.x.
    pub fn metadata_ram_bytes(&self) -> u64 {
        let (dirs, files, _) = self.namespace.stats();
        let inode_bytes = 150 * (dirs + files) as u64;
        let block_bytes: u64 =
            self.blocks.values().map(|b| 150 + 30 * b.locations.len() as u64).sum();
        inode_bytes + block_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nn(nodes: usize) -> NameNode {
        let mut config = Configuration::with_defaults();
        config.set(keys::DFS_SAFEMODE_EXTENSION_SECS, 0);
        let mut nn = NameNode::new(&config, Topology::flat(nodes)).unwrap();
        for i in 0..nodes as u32 {
            nn.register_datanode(SimTime::ZERO, NodeId(i), u64::MAX / 2);
        }
        // Fresh cluster: empty namespace exits safe mode on first census.
        nn.safemode.update(SimTime::ZERO, 0, 0);
        nn
    }

    /// Create a file with `blocks` blocks and report all replicas in.
    fn populate(nn: &mut NameNode, path: &str, blocks: usize) -> Vec<BlockId> {
        nn.mkdirs("/data").unwrap();
        nn.create_file(SimTime::ZERO, path, None, None, "tester").unwrap();
        let mut ids = Vec::new();
        for _ in 0..blocks {
            let (id, targets) = nn.add_block(SimTime::ZERO, path, 64, None).unwrap();
            for t in targets {
                nn.block_received(SimTime::ZERO, t, id);
            }
            ids.push(id);
        }
        nn.complete_file(path).unwrap();
        ids
    }

    #[test]
    fn write_path_allocates_and_tracks_replicas() {
        let mut nn = nn(4);
        let ids = populate(&mut nn, "/data/f", 2);
        assert_eq!(ids.len(), 2);
        for id in &ids {
            assert_eq!(nn.block_locations(*id).len(), 3);
        }
        assert!(nn.under_replicated().is_empty());
        assert!(nn.missing_blocks().is_empty());
        let f = nn.namespace().file("/data/f").unwrap();
        assert!(f.complete);
        assert_eq!(f.len, 128);
    }

    #[test]
    fn safemode_blocks_mutations() {
        let config = Configuration::with_defaults();
        let mut nn = NameNode::new(&config, Topology::flat(2)).unwrap();
        assert!(nn.safemode.is_on());
        assert!(matches!(nn.mkdirs("/x"), Err(HlError::SafeMode(_))));
        assert!(matches!(
            nn.create_file(SimTime::ZERO, "/x", None, None, "tester"),
            Err(HlError::SafeMode(_))
        ));
        nn.safemode.force_leave();
        nn.mkdirs("/x").unwrap();
    }

    #[test]
    fn dead_datanode_causes_under_replication() {
        let mut nn = nn(4);
        let ids = populate(&mut nn, "/data/f", 3);
        // Heartbeats for everyone except node 0, far in the future.
        let later = SimTime::ZERO + SimDuration::from_mins(20);
        for i in 1..4 {
            nn.heartbeat(later, NodeId(i), u64::MAX / 2);
        }
        let dead = nn.check_heartbeats(later);
        assert_eq!(dead, vec![NodeId(0)]);
        // Blocks that had a replica on node0 are now under-replicated.
        let under = nn.under_replicated();
        assert!(!under.is_empty());
        for (id, have, want) in under {
            assert!(ids.contains(&id));
            assert_eq!(want, 3);
            assert_eq!(have, 2);
        }
    }

    #[test]
    fn replication_monitor_emits_copy_commands_once() {
        let mut nn = nn(4);
        populate(&mut nn, "/data/f", 2);
        let later = SimTime::ZERO + SimDuration::from_mins(20);
        for i in 1..4 {
            nn.heartbeat(later, NodeId(i), u64::MAX / 2);
        }
        nn.check_heartbeats(later);
        let work = nn.replication_work(later, 100);
        let affected = nn.under_replicated().len();
        assert_eq!(affected, 0, "all under-replicated blocks have pending work");
        assert!(!work.is_empty());
        for cmd in &work {
            match cmd {
                DnCommand::Replicate { from, to, .. } => {
                    assert_ne!(from, to);
                    assert_ne!(*to, NodeId(0), "dead node cannot be a target");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Second pass finds nothing (pending suppresses duplicates).
        assert!(nn.replication_work(later, 100).is_empty());
        // Completing the copies restores full replication.
        for cmd in work {
            if let DnCommand::Replicate { block, to, .. } = cmd {
                nn.block_received(later, to, block);
            }
        }
        assert!(nn.under_replicated().is_empty());
    }

    #[test]
    fn over_replication_invalidates_extras() {
        let mut nn = nn(4);
        let ids = populate(&mut nn, "/data/f", 1);
        // A fourth replica appears (e.g. a dead node came back after
        // re-replication already happened).
        let holders = nn.block_locations(ids[0]);
        let extra = (0..4u32).map(NodeId).find(|n| !holders.contains(n)).unwrap();
        let cmds = nn.block_received(SimTime::ZERO, extra, ids[0]);
        assert_eq!(cmds.len(), 1);
        match &cmds[0] {
            DnCommand::Invalidate { block, node } => {
                assert_eq!(*block, ids[0]);
                assert_ne!(*node, extra, "the just-reported replica survives");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(nn.block_locations(ids[0]).len(), 3);
    }

    #[test]
    fn delete_emits_invalidations_for_all_replicas() {
        let mut nn = nn(4);
        populate(&mut nn, "/data/f", 2);
        let cmds = nn.delete("/data/f", false).unwrap();
        assert_eq!(cmds.len(), 6); // 2 blocks × 3 replicas
        assert!(nn.missing_blocks().is_empty(), "deleted blocks are forgotten entirely");
        assert!(!nn.namespace().exists("/data/f"));
    }

    #[test]
    fn restart_rebuilds_from_journal_and_reenters_safemode() {
        let mut nn = nn(4);
        let ids = populate(&mut nn, "/data/f", 4);
        nn.checkpoint();
        // More activity after the checkpoint, so replay matters.
        nn.create_file(SimTime::ZERO, "/data/g", None, None, "tester").unwrap();
        let (id_g, targets) = nn.add_block(SimTime::ZERO, "/data/g", 10, None).unwrap();
        for t in targets {
            nn.block_received(SimTime::ZERO, t, id_g);
        }
        nn.complete_file("/data/g").unwrap();

        nn.restart(SimTime(0)).unwrap();
        assert!(nn.safemode.is_on());
        assert!(nn.namespace().exists("/data/g"), "post-checkpoint ops replayed");
        assert_eq!(nn.block_census(), (0, 5), "locations forgotten");
        assert!(matches!(nn.mkdirs("/y"), Err(HlError::SafeMode(_))));

        // DataNodes re-register and report; safe mode exits (extension 0).
        let t = SimTime(1);
        for i in 0..4u32 {
            nn.register_datanode(t, NodeId(i), u64::MAX / 2);
        }
        // Rebuild per-node reports from what populate() placed: every node
        // reports all blocks it could hold; over-reporting is fine for the
        // census, invalidations trim later.
        let all: Vec<ReplicaMeta> = ids
            .iter()
            .map(|&b| (b, 64))
            .chain(std::iter::once((id_g, 10)))
            .map(|(b, len)| ReplicaMeta {
                id: b,
                len,
                gen_stamp: nn.block(b).map(|i| i.gen_stamp).unwrap_or(FIRST_GEN_STAMP),
            })
            .collect();
        let mut exited = false;
        for i in 0..4u32 {
            exited |= nn.process_block_report(t, NodeId(i), &all);
        }
        assert!(exited);
        assert!(!nn.safemode.is_on());
        nn.mkdirs("/y").unwrap();
    }

    #[test]
    fn block_report_removes_stale_locations() {
        let mut nn = nn(4);
        let ids = populate(&mut nn, "/data/f", 1);
        let holders = nn.block_locations(ids[0]);
        let holder = holders[0];
        // The holder reports an empty disk (scratch purged).
        nn.process_block_report(SimTime(10), holder, &[]);
        assert!(!nn.block_locations(ids[0]).contains(&holder));
        assert_eq!(nn.block_locations(ids[0]).len(), 2);
    }

    #[test]
    fn no_datanodes_means_insufficient_replication() {
        let config = Configuration::with_defaults();
        let mut nn = NameNode::new(&config, Topology::flat(0)).unwrap();
        nn.safemode.force_leave();
        nn.mkdirs("/d").unwrap();
        nn.create_file(SimTime::ZERO, "/d/f", None, None, "tester").unwrap();
        assert!(matches!(
            nn.add_block(SimTime::ZERO, "/d/f", 64, None),
            Err(HlError::InsufficientReplication { .. })
        ));
    }

    #[test]
    fn metadata_ram_grows_with_namespace() {
        let mut nn = nn(4);
        let before = nn.metadata_ram_bytes();
        populate(&mut nn, "/data/f", 10);
        assert!(nn.metadata_ram_bytes() > before + 10 * 150);
    }
}
