//! The NameNode: RAM-resident namespace + block map, heartbeat tracking,
//! safe mode, and the replication monitor.
//!
//! This is the center of the paper's Figure 2: "DataNodes report block
//! information to NameNode", "Block metadata lives in memory", and the
//! JobTracker "receives block-level information" from here. It is written
//! as a **pure state machine** — methods take the current [`SimTime`] and
//! return commands — so `hl-core` can drive it from the event queue and
//! unit tests can drive it directly.
//!
//! ## Scaling structure
//!
//! Every hot path is indexed so cost tracks the *change*, not the cluster:
//!
//! * a per-node block index (`node_blocks`) makes block reports an
//!   O(report) diff and dead-node cleanup an O(node's replicas) sweep;
//! * the safe-mode census is a pair of incrementally-maintained counters
//!   (`reported_count`, `total_location_count`) instead of a full scan;
//! * under-/missing-/over-replicated blocks live in indexed sets updated
//!   on every location change, so the replication monitor pops work in
//!   O(tasks) — `under` is priority-bucketed by how many replicas short a
//!   block is, mirroring HDFS's `UnderReplicatedBlocks` queues;
//! * the fsimage is a serialized [`FsImage`] checkpoint (auto-written
//!   every `fs.checkpoint.txns` journal ops), so restart loads the image
//!   and replays only the edit-log *tail* instead of all history.

use std::collections::{BTreeMap, BTreeSet};

use hl_common::config::keys;
use hl_common::prelude::*;
use hl_metrics::MetricsRegistry;

use crate::block::{BlockId, IncrementalBlockReport, ReplicaMeta, FIRST_GEN_STAMP};
use crate::editlog::{EditLog, EditOp};
use crate::fsimage::{BlockRecord, FsImage};
use crate::lease::{Lease, LeaseManager};
use crate::namespace::{FileStatus, Namespace};
use crate::placement::{self, Candidate};
use crate::safemode::SafeMode;

/// Everything the NameNode knows about one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    /// Target replica count (from the owning file).
    pub expected_replication: u32,
    /// Block length in bytes.
    pub len: u64,
    /// Live replica locations, per the latest reports. Kept sorted: a
    /// replica set is tiny (~replication factor), so a sorted vec beats a
    /// tree everywhere — and `clear()` keeps its allocation, which is what
    /// lets a restart reset a million blocks without a million frees.
    pub locations: Vec<NodeId>,
    /// Re-replications currently in flight (prevents duplicate work).
    pub pending_replicas: u32,
    /// Current generation stamp; replicas reporting an older stamp were
    /// left behind by pipeline recovery and get invalidated.
    pub gen_stamp: u64,
}

/// Per-DataNode registration state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataNodeInfo {
    /// Last heartbeat time.
    pub last_heartbeat: SimTime,
    /// Free disk as of the last heartbeat.
    pub free_bytes: u64,
    /// Considered alive by the heartbeat monitor.
    pub alive: bool,
}

/// A command the NameNode hands back to the cluster driver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings follow the variant docs directly
pub enum DnCommand {
    /// Copy `block` from `from` to `to` (re-replication).
    Replicate { block: BlockId, from: NodeId, to: NodeId },
    /// Delete an excess/invalidated replica on `node`.
    Invalidate { block: BlockId, node: NodeId },
}

/// Blocks shorter than their target by more than this many replicas all
/// share the most-urgent bucket (HDFS caps its queue levels the same way).
const MAX_REPLICATION_PRIORITY: usize = 8;

/// Priority-bucketed index of under-replicated blocks: bucket `k` holds
/// blocks missing `k` replicas, so the replication monitor serves the
/// most-degraded blocks first without scanning the block map.
#[derive(Debug, Clone)]
struct UnderReplicatedQueue {
    buckets: Vec<BTreeSet<BlockId>>,
    index: BTreeMap<BlockId, usize>,
}

impl UnderReplicatedQueue {
    fn new() -> Self {
        UnderReplicatedQueue {
            buckets: vec![BTreeSet::new(); MAX_REPLICATION_PRIORITY + 1],
            index: BTreeMap::new(),
        }
    }

    /// Insert or re-bucket `id` as missing `need` replicas.
    fn set(&mut self, id: BlockId, need: u32) {
        let pri =
            usize::try_from(need).unwrap_or(MAX_REPLICATION_PRIORITY).min(MAX_REPLICATION_PRIORITY);
        if let Some(&old) = self.index.get(&id) {
            if old == pri {
                return;
            }
            self.buckets[old].remove(&id);
        }
        self.buckets[pri].insert(id);
        self.index.insert(id, pri);
    }

    fn remove(&mut self, id: BlockId) {
        if let Some(pri) = self.index.remove(&id) {
            self.buckets[pri].remove(&id);
        }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    /// Member ids in id order (deterministic reporting).
    fn ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.index.keys().copied()
    }

    /// Work order: most-missing bucket first, id order within a bucket.
    fn priority_order(&self) -> Vec<BlockId> {
        self.buckets.iter().rev().flat_map(|b| b.iter().copied()).collect()
    }
}

/// The NameNode.
#[derive(Debug, Clone)]
pub struct NameNode {
    namespace: Namespace,
    /// Journal of namespace mutations since the last checkpoint.
    pub editlog: EditLog,
    /// Serialized [`FsImage`] written by the last checkpoint.
    fsimage: Vec<u8>,
    blocks: BTreeMap<BlockId, BlockInfo>,
    datanodes: BTreeMap<NodeId, DataNodeInfo>,
    decommissioning: BTreeSet<NodeId>,
    /// Which blocks each DataNode holds, per the latest reports — the
    /// reverse index that makes report diffs and dead-node sweeps cheap.
    /// Sorted vecs (binary-search insert/remove), like block locations:
    /// [`Self::shutdown`] clears them in place so recovery never pays for
    /// tearing down and rebuilding millions of tree nodes.
    node_blocks: BTreeMap<NodeId, Vec<BlockId>>,
    /// Blocks with at least one reported replica (the safe-mode census
    /// numerator, maintained incrementally).
    reported_count: usize,
    /// Total replica locations across all blocks (metadata-RAM gauge).
    total_location_count: u64,
    under: UnderReplicatedQueue,
    over: BTreeSet<BlockId>,
    next_block_id: u64,
    next_gen_stamp: u64,
    /// Stale/garbage replicas queued for invalidation, drained by the
    /// replication monitor.
    invalidations: Vec<(BlockId, NodeId)>,
    leases: LeaseManager,
    /// Journal ops between automatic checkpoints (0 disables the trigger).
    checkpoint_every: usize,
    /// True between [`Self::shutdown`] and [`Self::restart`] — lets the
    /// teardown walk run exactly once per restart cycle.
    down: bool,
    /// Safe-mode state machine.
    pub safemode: SafeMode,
    /// Instruments for the "namenode" daemon (RPC ops, edit-log ops,
    /// safe-mode transitions, namespace/replication gauges).
    pub metrics: MetricsRegistry,
    topology: Topology,
    heartbeat_interval: SimDuration,
    dead_after: SimDuration,
    default_replication: u32,
    default_block_size: u64,
}

impl NameNode {
    /// Start a NameNode over `topology` with course-default configuration.
    pub fn new(config: &Configuration, topology: Topology) -> Result<Self> {
        let threshold = config.get_f64(keys::DFS_SAFEMODE_THRESHOLD, 0.999)?;
        let extension =
            SimDuration::from_secs(config.get_u64(keys::DFS_SAFEMODE_EXTENSION_SECS, 30)?);
        let heartbeat_secs = config.get_u64(keys::DFS_HEARTBEAT_SECS, 3)?;
        let dead_after_beats = config.get_u64(keys::DFS_HEARTBEAT_DEAD_AFTER, 200)?;
        let lease_soft =
            SimDuration::from_secs(config.get_u64(keys::DFS_LEASE_SOFT_LIMIT_SECS, 60)?);
        let lease_hard =
            SimDuration::from_secs(config.get_u64(keys::DFS_LEASE_HARD_LIMIT_SECS, 300)?);
        let checkpoint_ops = config.get_u64(keys::DFS_CHECKPOINT_OPS, 10_000)?;
        // A freshly formatted NameNode's image: empty tree, allocation
        // counters at their starting marks.
        let format_image =
            FsImage { next_block_id: 1, next_gen_stamp: FIRST_GEN_STAMP, ..FsImage::default() };
        Ok(NameNode {
            namespace: Namespace::new(),
            editlog: EditLog::new(),
            fsimage: format_image.to_bytes(),
            blocks: BTreeMap::new(),
            datanodes: BTreeMap::new(),
            decommissioning: BTreeSet::new(),
            node_blocks: BTreeMap::new(),
            reported_count: 0,
            total_location_count: 0,
            under: UnderReplicatedQueue::new(),
            over: BTreeSet::new(),
            next_block_id: 1,
            next_gen_stamp: FIRST_GEN_STAMP,
            invalidations: Vec::new(),
            leases: LeaseManager::new(lease_soft, lease_hard),
            checkpoint_every: usize::try_from(checkpoint_ops).unwrap_or(usize::MAX),
            down: false,
            safemode: SafeMode::new(threshold, extension),
            metrics: MetricsRegistry::new(),
            topology,
            heartbeat_interval: SimDuration::from_secs(heartbeat_secs),
            dead_after: SimDuration::from_secs(heartbeat_secs * dead_after_beats),
            default_replication: config.get_u32(keys::DFS_REPLICATION, 3)?,
            default_block_size: config.get_u64(keys::DFS_BLOCK_SIZE, 64 * 1024 * 1024)?,
        })
    }

    /// Heartbeat period DataNodes should use.
    pub fn heartbeat_interval(&self) -> SimDuration {
        self.heartbeat_interval
    }

    /// Default replication for new files.
    pub fn default_replication(&self) -> u32 {
        self.default_replication
    }

    /// Default block size for new files.
    pub fn default_block_size(&self) -> u64 {
        self.default_block_size
    }

    /// The namespace, read-only (fsck, listings, input splits).
    pub fn namespace(&self) -> &Namespace {
        &self.namespace
    }

    /// Block info, read-only.
    pub fn block(&self, id: BlockId) -> Option<&BlockInfo> {
        self.blocks.get(&id)
    }

    /// Compact manifest of the whole block map — `(block, len,
    /// expected_replication)` in id order. Location-independent, so a
    /// pre-crash manifest can be compared against a journal-recovered
    /// NameNode whose replica locations are still empty (the chaos
    /// harness's crash-recovery oracle).
    pub fn block_manifest(&self) -> Vec<(BlockId, u64, u32)> {
        self.blocks.iter().map(|(&id, b)| (id, b.len, b.expected_replication)).collect()
    }

    /// Live replica locations of a block (empty when missing).
    pub fn block_locations(&self, id: BlockId) -> Vec<NodeId> {
        self.blocks.get(&id).map(|b| b.locations.clone()).unwrap_or_default()
    }

    /// The serialized fsimage as of the last checkpoint (what a secondary
    /// NameNode would have on disk).
    pub fn fsimage_bytes(&self) -> &[u8] {
        &self.fsimage
    }

    /// Append one op to the edit log, count it, and checkpoint when the
    /// journal tail reaches `fs.checkpoint.txns` ops. Every caller must
    /// have finished mutating namespace/block/lease state *before*
    /// journaling, so the auto-checkpoint always snapshots a consistent
    /// image.
    fn journal(&mut self, op: EditOp) {
        self.editlog.append(op);
        self.metrics.incr("namenode", "editlog.ops", 1);
        if self.checkpoint_every > 0 && self.editlog.len() >= self.checkpoint_every {
            self.checkpoint();
        }
    }

    fn guard_safemode(&self) -> Result<()> {
        if self.safemode.is_on() {
            let (reported, expected) = self.block_census();
            Err(HlError::SafeMode(self.safemode.status(reported, expected)))
        } else {
            Ok(())
        }
    }

    /// Feed the (O(1)) census to safe mode; counts the exit transition.
    fn update_safemode(&mut self, now: SimTime) -> bool {
        let (reported, expected) = self.block_census();
        let exited = self.safemode.update(now, reported, expected);
        if exited {
            self.metrics.incr("namenode", "safemode.exited", 1);
        }
        exited
    }

    // ----------------------------------------------------- location index

    /// Record that `node` holds `id`; keeps every derived index (census
    /// counters, per-node index, replication sets) exact. Returns `true`
    /// when this was new information.
    fn add_location(&mut self, id: BlockId, node: NodeId) -> bool {
        let newly_reported = match self.blocks.get_mut(&id) {
            Some(info) => {
                match info.locations.binary_search(&node) {
                    Ok(_) => return false,
                    Err(at) => info.locations.insert(at, node),
                }
                info.locations.len() == 1
            }
            None => return false,
        };
        if newly_reported {
            self.reported_count += 1;
        }
        self.total_location_count += 1;
        let held = self.node_blocks.entry(node).or_default();
        if let Err(at) = held.binary_search(&id) {
            held.insert(at, id);
        }
        self.reassess(id);
        true
    }

    /// Forget that `node` holds `id` (mirror of [`Self::add_location`]).
    fn remove_location(&mut self, id: BlockId, node: NodeId) -> bool {
        let last_replica = match self.blocks.get_mut(&id) {
            Some(info) => {
                match info.locations.binary_search(&node) {
                    Ok(at) => {
                        info.locations.remove(at);
                    }
                    Err(_) => return false,
                }
                info.locations.is_empty()
            }
            None => return false,
        };
        if last_replica {
            self.reported_count = self.reported_count.saturating_sub(1);
        }
        self.total_location_count = self.total_location_count.saturating_sub(1);
        if let Some(held) = self.node_blocks.get_mut(&node) {
            if let Ok(at) = held.binary_search(&id) {
                held.remove(at);
            }
        }
        self.reassess(id);
        true
    }

    /// Drop a block from the map and every derived index (deletion, lease
    /// recovery). Returns the forgotten info so callers can invalidate its
    /// replicas.
    fn forget_block(&mut self, id: BlockId) -> Option<BlockInfo> {
        let info = self.blocks.remove(&id)?;
        if !info.locations.is_empty() {
            self.reported_count = self.reported_count.saturating_sub(1);
        }
        self.total_location_count = self
            .total_location_count
            .saturating_sub(u64::try_from(info.locations.len()).unwrap_or(0));
        for node in &info.locations {
            if let Some(held) = self.node_blocks.get_mut(node) {
                if let Ok(at) = held.binary_search(&id) {
                    held.remove(at);
                }
            }
        }
        self.under.remove(id);
        self.over.remove(&id);
        Some(info)
    }

    /// Recompute `id`'s membership in the under/over indexes from its
    /// current locations. O(replicas of this block). Missing blocks need
    /// no index: "missing" is exactly "in the map with zero locations",
    /// so the census counters already give the count in O(1).
    fn reassess(&mut self, id: BlockId) {
        let Some(info) = self.blocks.get(&id) else {
            self.under.remove(id);
            self.over.remove(&id);
            return;
        };
        let counted = u32::try_from(
            info.locations.iter().filter(|n| !self.decommissioning.contains(n)).count(),
        )
        .unwrap_or(u32::MAX);
        let have = counted.saturating_add(info.pending_replicas);
        if !info.locations.is_empty() && have < info.expected_replication {
            self.under.set(id, info.expected_replication.saturating_sub(counted));
        } else {
            self.under.remove(id);
        }
        if u32::try_from(info.locations.len()).unwrap_or(u32::MAX) > info.expected_replication {
            self.over.insert(id);
        } else {
            self.over.remove(&id);
        }
    }

    /// Reassess every block with a replica on `node` (decommission
    /// transitions change what "counted" means for exactly these blocks).
    fn reassess_node(&mut self, node: NodeId) {
        let ids: Vec<BlockId> = self.node_blocks.get(&node).map(|s| s.to_vec()).unwrap_or_default();
        for id in ids {
            self.reassess(id);
        }
    }

    // ---------------------------------------------------------------- DNs

    /// A DataNode registers (daemon start).
    pub fn register_datanode(&mut self, now: SimTime, node: NodeId, free_bytes: u64) {
        self.datanodes.insert(node, DataNodeInfo { last_heartbeat: now, free_bytes, alive: true });
    }

    /// Heartbeat from a DataNode. Revives nodes the monitor had declared
    /// dead (their replicas come back via the next block report).
    pub fn heartbeat(&mut self, now: SimTime, node: NodeId, free_bytes: u64) {
        self.metrics.incr("namenode", "rpc.heartbeat", 1);
        let info = self.datanodes.entry(node).or_insert(DataNodeInfo {
            last_heartbeat: now,
            free_bytes,
            alive: true,
        });
        info.last_heartbeat = now;
        info.free_bytes = free_bytes;
        info.alive = true;
    }

    /// Remove a DataNode from the cluster entirely (the operator pulled it
    /// from the include file after decommissioning). Its replicas are
    /// forgotten and it stops counting as live or draining.
    pub fn unregister_datanode(&mut self, node: NodeId) {
        let ids: Vec<BlockId> = self.node_blocks.get(&node).map(|s| s.to_vec()).unwrap_or_default();
        for id in ids {
            self.remove_location(id, node);
        }
        self.node_blocks.remove(&node);
        self.datanodes.remove(&node);
        self.decommissioning.remove(&node);
    }

    /// Update a DataNode's free-space figure without touching its
    /// heartbeat clock (used on the synchronous write path).
    pub fn update_free_space(&mut self, node: NodeId, free_bytes: u64) {
        if let Some(info) = self.datanodes.get_mut(&node) {
            info.free_bytes = free_bytes;
        }
    }

    /// Sweep for dead DataNodes; removes their replicas from the block map
    /// — O(dead node's replicas) via the per-node index, not a full-map
    /// scan. Returns the newly-dead nodes.
    pub fn check_heartbeats(&mut self, now: SimTime) -> Vec<NodeId> {
        let mut newly_dead = Vec::new();
        for (&node, info) in self.datanodes.iter_mut() {
            if info.alive && now.since(info.last_heartbeat) > self.dead_after {
                info.alive = false;
                newly_dead.push(node);
            }
        }
        for &node in &newly_dead {
            let ids: Vec<BlockId> =
                self.node_blocks.get(&node).map(|s| s.to_vec()).unwrap_or_default();
            for id in ids {
                self.remove_location(id, node);
            }
        }
        if !newly_dead.is_empty() {
            self.metrics.incr("namenode", "datanodes.declared_dead", newly_dead.len() as u64);
        }
        // Losing replicas can regress the safe-mode census.
        self.update_safemode(now);
        // The lease monitor rides the same sweep (its SimTime clock tick).
        self.check_leases(now);
        newly_dead
    }

    /// Live DataNodes.
    pub fn live_datanodes(&self) -> Vec<NodeId> {
        self.datanodes.iter().filter(|(_, i)| i.alive).map(|(&n, _)| n).collect()
    }

    /// Process a full block report from `node`: an O(report + previously
    /// known replicas on `node`) diff against the per-node index. Replicas
    /// carrying a stale generation stamp (pipeline recovery happened
    /// without this node) are not counted as locations and get queued for
    /// invalidation, as do replicas of blocks the NameNode no longer knows
    /// (deleted while the node was down). Returns `true` when this report
    /// (or its safe-mode consequence) exits safe mode.
    pub fn process_block_report(
        &mut self,
        now: SimTime,
        node: NodeId,
        report: &[ReplicaMeta],
    ) -> bool {
        self.metrics.incr("namenode", "rpc.block_report", 1);
        let before: Vec<BlockId> = self.node_blocks.get(&node).cloned().unwrap_or_default();
        let mut confirmed: BTreeSet<BlockId> = BTreeSet::new();
        for r in report {
            match self.blocks.get(&r.id) {
                None => self.invalidations.push((r.id, node)),
                Some(info) if r.gen_stamp < info.gen_stamp => {
                    self.remove_location(r.id, node);
                    self.invalidations.push((r.id, node));
                }
                Some(_) => {
                    self.add_location(r.id, node);
                    confirmed.insert(r.id);
                }
            }
        }
        // Anything we believed this node held but it no longer reports.
        for id in before {
            if !confirmed.contains(&id) {
                self.remove_location(id, node);
            }
        }
        self.update_safemode(now)
    }

    /// Process a delta report from `node`: replicas received and deleted
    /// since its last report. O(delta). Stale stamps and unknown blocks
    /// get the same treatment as in a full report; `deleted` entries only
    /// retract locations (the DataNode already dropped the bytes).
    pub fn process_incremental_report(
        &mut self,
        now: SimTime,
        node: NodeId,
        report: &IncrementalBlockReport,
    ) -> bool {
        self.metrics.incr("namenode", "rpc.incremental_block_report", 1);
        for r in &report.received {
            match self.blocks.get(&r.id) {
                None => self.invalidations.push((r.id, node)),
                Some(info) if r.gen_stamp < info.gen_stamp => {
                    self.remove_location(r.id, node);
                    self.invalidations.push((r.id, node));
                }
                Some(_) => {
                    self.add_location(r.id, node);
                }
            }
        }
        for &id in &report.deleted {
            self.remove_location(id, node);
        }
        self.update_safemode(now)
    }

    /// A DataNode confirms receipt of one block (pipeline write or
    /// completed re-replication).
    pub fn block_received(&mut self, now: SimTime, node: NodeId, id: BlockId) -> Vec<DnCommand> {
        self.metrics.incr("namenode", "rpc.block_received", 1);
        let mut commands = Vec::new();
        if self.blocks.contains_key(&id) {
            self.add_location(id, node);
            if let Some(info) = self.blocks.get_mut(&id) {
                info.pending_replicas = info.pending_replicas.saturating_sub(1);
            }
            // Over-replication: evict replicas on decommissioning nodes
            // first (that is the whole point of the drain), then the
            // highest-id extra that isn't the one just written.
            loop {
                let victim = {
                    let Some(info) = self.blocks.get(&id) else { break };
                    let replicas = u32::try_from(info.locations.len()).unwrap_or(u32::MAX);
                    if replicas <= info.expected_replication {
                        break;
                    }
                    info.locations
                        .iter()
                        .find(|n| self.decommissioning.contains(n) && **n != node)
                        .or_else(|| info.locations.iter().rev().find(|&&n| n != node))
                        .copied()
                        .unwrap_or(node)
                };
                self.remove_location(id, victim);
                commands.push(DnCommand::Invalidate { block: id, node: victim });
            }
            // The pending decrement changed the under-replication math.
            self.reassess(id);
        }
        self.update_safemode(now);
        commands
    }

    /// `(blocks with ≥1 reported replica, total blocks)` — O(1), the
    /// counters are maintained on every location change.
    pub fn block_census(&self) -> (usize, usize) {
        (self.reported_count, self.blocks.len())
    }

    // ---------------------------------------------------------- namespace

    /// `hadoop fs -mkdir -p`.
    pub fn mkdirs(&mut self, path: &str) -> Result<()> {
        self.metrics.incr("namenode", "rpc.mkdirs", 1);
        self.guard_safemode()?;
        self.namespace.mkdirs(path)?;
        self.journal(EditOp::Mkdirs { path: path.to_string() });
        Ok(())
    }

    /// Create an (incomplete) file; `holder` is granted the write lease.
    pub fn create_file(
        &mut self,
        now: SimTime,
        path: &str,
        replication: Option<u32>,
        block_size: Option<u64>,
        holder: &str,
    ) -> Result<()> {
        self.metrics.incr("namenode", "rpc.create_file", 1);
        self.guard_safemode()?;
        let replication = replication.unwrap_or(self.default_replication);
        let block_size = block_size.unwrap_or(self.default_block_size);
        self.namespace.create_file(path, replication, block_size, now)?;
        self.leases.acquire(now, path, holder);
        self.journal(EditOp::Create {
            path: path.to_string(),
            replication,
            block_size,
            at: now,
            holder: holder.to_string(),
        });
        Ok(())
    }

    /// Allocate the next block of `path` and choose its replica targets.
    /// Also renews the writer's lease — block allocation is progress.
    pub fn add_block(
        &mut self,
        now: SimTime,
        path: &str,
        len: u64,
        writer: Option<NodeId>,
    ) -> Result<(BlockId, Vec<NodeId>)> {
        self.metrics.incr("namenode", "rpc.add_block", 1);
        self.guard_safemode()?;
        let file = self.namespace.file(path)?;
        let (replication, block_size) = (file.replication, file.block_size);

        let candidates: Vec<Candidate> = self
            .datanodes
            .iter()
            .filter(|(n, i)| i.alive && !self.decommissioning.contains(n))
            .map(|(&node, i)| Candidate { node, free_bytes: i.free_bytes })
            .collect();
        let id = BlockId(self.next_block_id);
        let targets = placement::choose_targets(
            &self.topology,
            &candidates,
            writer,
            replication,
            len.min(block_size),
            id.0,
        );
        if targets.is_empty() {
            return Err(HlError::InsufficientReplication { wanted: replication, available: 0 });
        }
        self.namespace.append_block(path, id, len)?;
        self.next_block_id += 1;
        let gen_stamp = self.next_gen_stamp;
        self.next_gen_stamp += 1;
        self.blocks.insert(
            id,
            BlockInfo {
                expected_replication: replication,
                len,
                locations: Vec::new(),
                pending_replicas: 0,
                gen_stamp,
            },
        );
        self.reassess(id);
        self.leases.renew(now, path);
        self.journal(EditOp::AddBlock { path: path.to_string(), block: id, len, gen_stamp });
        Ok((id, targets))
    }

    /// Bump a block's generation stamp (pipeline recovery: a DataNode fell
    /// out of the write pipeline). The new stamp is journaled; replicas
    /// still carrying the old stamp are invalidated when they next report.
    /// Counts as writer progress, so the lease renews too.
    pub fn bump_gen_stamp(&mut self, now: SimTime, path: &str, id: BlockId) -> Result<u64> {
        self.metrics.incr("namenode", "rpc.bump_gen_stamp", 1);
        let info = self
            .blocks
            .get_mut(&id)
            .ok_or_else(|| HlError::Internal(format!("gen-stamp bump of unknown {id}")))?;
        let gen_stamp = self.next_gen_stamp;
        self.next_gen_stamp += 1;
        info.gen_stamp = gen_stamp;
        self.leases.renew(now, path);
        self.journal(EditOp::BumpGenStamp { block: id, gen_stamp });
        Ok(gen_stamp)
    }

    /// Close a file and release its write lease.
    pub fn complete_file(&mut self, path: &str) -> Result<()> {
        self.metrics.incr("namenode", "rpc.complete_file", 1);
        self.guard_safemode()?;
        self.namespace.complete_file(path)?;
        self.leases.release(path);
        self.journal(EditOp::Close { path: path.to_string() });
        Ok(())
    }

    /// Delete a path; replicas of freed blocks get invalidation commands.
    pub fn delete(&mut self, path: &str, recursive: bool) -> Result<Vec<DnCommand>> {
        self.metrics.incr("namenode", "rpc.delete", 1);
        self.guard_safemode()?;
        let freed = self.namespace.delete(path, recursive)?;
        self.leases.release_under(path);
        let mut commands = Vec::new();
        for id in freed {
            if let Some(info) = self.forget_block(id) {
                for node in info.locations {
                    commands.push(DnCommand::Invalidate { block: id, node });
                }
            }
        }
        self.journal(EditOp::Delete { path: path.to_string(), recursive });
        Ok(commands)
    }

    /// `hadoop fs -setrep`: change a file's target replication. Raising it
    /// queues re-replication; lowering it queues excess-replica
    /// invalidation (both handled by the next monitor pass).
    pub fn set_replication(&mut self, path: &str, replication: u32) -> Result<Vec<BlockId>> {
        self.metrics.incr("namenode", "rpc.set_replication", 1);
        self.guard_safemode()?;
        if replication == 0 {
            return Err(HlError::Config("replication must be >= 1".into()));
        }
        let file = self.namespace.file_mut(path)?;
        file.replication = replication;
        let blocks = file.blocks.clone();
        for id in &blocks {
            if let Some(info) = self.blocks.get_mut(id) {
                info.expected_replication = replication;
            }
            self.reassess(*id);
        }
        self.journal(EditOp::SetReplication { path: path.to_string(), replication });
        Ok(blocks)
    }

    /// Flag `path`'s stored bytes as codec-framed (set by the DFS client
    /// right after it finishes a compressed write). Journaled, so restarts
    /// and fsimage checkpoints preserve the decode instruction.
    pub fn set_file_codec(&mut self, path: &str, codec: hl_codec::CodecId) -> Result<()> {
        self.metrics.incr("namenode", "rpc.set_codec", 1);
        self.guard_safemode()?;
        self.namespace.file_mut(path)?.codec = codec;
        self.journal(EditOp::SetCodec { path: path.to_string(), codec });
        Ok(())
    }

    /// Rename a path (an open file's lease follows it).
    pub fn rename(&mut self, src: &str, dst: &str) -> Result<()> {
        self.metrics.incr("namenode", "rpc.rename", 1);
        self.guard_safemode()?;
        self.namespace.rename(src, dst)?;
        self.leases.rename(src, dst);
        self.journal(EditOp::Rename { src: src.to_string(), dst: dst.to_string() });
        Ok(())
    }

    /// Directory listing.
    pub fn list(&self, path: &str) -> Result<Vec<FileStatus>> {
        self.namespace.list(path)
    }

    // ------------------------------------------------------------- leases

    /// The write lease on `path`, if the file is open for write.
    pub fn lease(&self, path: &str) -> Option<&Lease> {
        self.leases.lease(path)
    }

    /// Every outstanding write lease, path-ordered (fsck's open-file view).
    pub fn open_files(&self) -> Vec<&Lease> {
        self.leases.leases().collect()
    }

    /// Explicit `recoverLease` (the admin/shell verb). Returns `Ok(true)`
    /// when the file is already closed, `Ok(false)` when recovery was
    /// started — the next lease check finalizes it.
    pub fn recover_lease(&mut self, path: &str) -> Result<bool> {
        self.metrics.incr("namenode", "rpc.recover_lease", 1);
        let file = self.namespace.file(path)?;
        if file.complete {
            self.leases.release(path);
            return Ok(true);
        }
        if !self.leases.start_recovery(path) {
            // Open file without a lease shouldn't happen; self-heal it.
            self.leases.acquire(SimTime::ZERO, path, "recovery");
            self.leases.start_recovery(path);
        }
        Ok(false)
    }

    /// One lease-monitor tick: advance expiry state machines and finalize
    /// files whose recovery is due. Idles during safe mode (like the real
    /// LeaseManager — no namespace mutations before the image is safe).
    /// Returns the paths finalized this tick.
    pub fn check_leases(&mut self, now: SimTime) -> Vec<String> {
        if self.safemode.is_on() {
            return Vec::new();
        }
        let due = self.leases.check(now);
        let mut finalized = Vec::new();
        for path in due {
            if self.finalize_lease(&path) {
                finalized.push(path);
            }
        }
        if !finalized.is_empty() {
            self.metrics.incr("namenode", "leases.recovered", finalized.len() as u64);
        }
        finalized
    }

    /// Finalize one crashed writer's file: drop trailing blocks no
    /// DataNode ever confirmed, close at the last consistent length, and
    /// release the lease. Returns false when the file vanished meanwhile.
    fn finalize_lease(&mut self, path: &str) -> bool {
        let Ok(file) = self.namespace.file(path) else {
            self.leases.release(path);
            return false;
        };
        if file.complete {
            self.leases.release(path);
            return true;
        }
        // Walk trailing blocks back until one has a confirmed replica.
        // Only the tail can be unconfirmed: pipelines write in order.
        let mut tail: Vec<BlockId> = file.blocks.clone();
        while let Some(&last) = tail.last() {
            let confirmed = self
                .blocks
                .get(&last)
                .map(|b| !b.locations.is_empty() || b.pending_replicas > 0)
                .unwrap_or(false);
            if confirmed {
                break;
            }
            let len = self.blocks.get(&last).map(|b| b.len).unwrap_or(0);
            if self.namespace.abandon_block(path, last, len).is_err() {
                break;
            }
            self.forget_block(last);
            self.journal(EditOp::AbandonBlock { path: path.to_string(), block: last, len });
            tail.pop();
        }
        let closed = self.namespace.complete_file(path).is_ok();
        self.leases.release(path);
        if closed {
            self.journal(EditOp::Close { path: path.to_string() });
        }
        true
    }

    // ------------------------------------------------------- replication

    /// Blocks with fewer *counted* replicas than expected (and how short).
    /// Replicas on decommissioning nodes are still readable but no longer
    /// count toward the target, so starting a decommission immediately
    /// queues its blocks for copying — HDFS's drain semantics. Served from
    /// the indexed queue: O(under-replicated), not O(blocks).
    pub fn under_replicated(&self) -> Vec<(BlockId, u32, u32)> {
        self.under
            .ids()
            .filter_map(|id| {
                let b = self.blocks.get(&id)?;
                let counted = u32::try_from(
                    b.locations.iter().filter(|n| !self.decommissioning.contains(n)).count(),
                )
                .unwrap_or(u32::MAX);
                Some((id, counted, b.expected_replication))
            })
            .collect()
    }

    /// Blocks with zero live replicas — data loss until a holder returns.
    /// Derived by scanning the map (fsck/admin-report granularity); the
    /// *count* is available in O(1) from the census counters.
    pub fn missing_blocks(&self) -> Vec<BlockId> {
        self.blocks.iter().filter(|(_, b)| b.locations.is_empty()).map(|(&id, _)| id).collect()
    }

    /// One replication-monitor pass: emit copy commands for
    /// under-replicated blocks (bounded per pass, like the real monitor),
    /// most-degraded blocks first via the priority buckets.
    pub fn replication_work(&mut self, _now: SimTime, max_tasks: usize) -> Vec<DnCommand> {
        if self.safemode.is_on() {
            return Vec::new(); // the monitor idles during safe mode
        }
        let live: Vec<NodeId> = self.live_datanodes();
        let mut commands = Vec::new();
        // Stale-genstamp and garbage replicas first: deletes are cheap and
        // every pass drains the whole queue (deduplicated — a replica may
        // have been reported more than once between passes).
        let mut pending: Vec<(BlockId, NodeId)> = std::mem::take(&mut self.invalidations);
        pending.sort_unstable();
        pending.dedup();
        for (block, node) in pending {
            commands.push(DnCommand::Invalidate { block, node });
        }
        for id in self.under.priority_order() {
            if commands.len() >= max_tasks {
                break;
            }
            // The queue is maintained eagerly, but stay panic-free if a
            // concurrent mutation path ever drops the entry mid-pass.
            let Some(info) = self.blocks.get(&id) else { continue };
            let from = match info.locations.first() {
                Some(&n) => n,
                None => continue,
            };
            let holders: Vec<NodeId> = info.locations.clone();
            let candidates: Vec<Candidate> = live
                .iter()
                .filter(|n| holders.binary_search(n).is_err() && !self.decommissioning.contains(*n))
                .map(|&node| Candidate { node, free_bytes: self.datanodes[&node].free_bytes })
                .collect();
            let targets =
                placement::choose_targets(&self.topology, &candidates, None, 1, info.len, id.0);
            if let Some(&to) = targets.first() {
                if let Some(info) = self.blocks.get_mut(&id) {
                    info.pending_replicas += 1;
                }
                self.reassess(id);
                commands.push(DnCommand::Replicate { block: id, from, to });
            }
        }
        // Over-replication sweep (setrep-down, returned dead nodes): trim
        // highest-id excess replicas, from the indexed set.
        for id in self.over.iter().copied().collect::<Vec<_>>() {
            if commands.len() >= max_tasks {
                break;
            }
            loop {
                let victim = {
                    let Some(info) = self.blocks.get(&id) else { break };
                    let replicas = u32::try_from(info.locations.len()).unwrap_or(u32::MAX);
                    if replicas <= info.expected_replication {
                        break;
                    }
                    // The guard above guarantees a last element; degrade
                    // gracefully anyway.
                    match info.locations.iter().next_back() {
                        Some(&v) => v,
                        None => break,
                    }
                };
                self.remove_location(id, victim);
                commands.push(DnCommand::Invalidate { block: id, node: victim });
            }
        }
        if !commands.is_empty() {
            self.metrics.incr("namenode", "replication.commands", commands.len() as u64);
        }
        commands
    }

    /// A scheduled re-replication failed (source died mid-copy); return
    /// the slot so the monitor can retry elsewhere.
    pub fn replication_failed(&mut self, id: BlockId) {
        if let Some(info) = self.blocks.get_mut(&id) {
            info.pending_replicas = info.pending_replicas.saturating_sub(1);
        }
        self.reassess(id);
    }

    /// Begin draining a DataNode: it stops receiving new blocks and its
    /// replicas stop counting toward replication targets, so the monitor
    /// copies them elsewhere. The node keeps serving reads while draining.
    pub fn start_decommission(&mut self, node: NodeId) {
        if self.decommissioning.insert(node) {
            self.reassess_node(node);
        }
    }

    /// Abort a drain.
    pub fn cancel_decommission(&mut self, node: NodeId) {
        if self.decommissioning.remove(&node) {
            self.reassess_node(node);
        }
    }

    /// Nodes currently draining.
    pub fn decommissioning_nodes(&self) -> Vec<NodeId> {
        self.decommissioning.iter().copied().collect()
    }

    /// True once every block that has a replica on `node` also has a full
    /// replica set elsewhere — the node may be removed.
    pub fn decommission_complete(&self, node: NodeId) -> bool {
        self.decommission_stuck_blocks(node).is_empty()
    }

    /// The blocks still pinning a draining `node`: they have a replica on
    /// it but not enough counted replicas elsewhere. What an operator
    /// staring at a wedged decommission actually needs to see. Served from
    /// the per-node index: O(node's replicas), not O(blocks).
    pub fn decommission_stuck_blocks(&self, node: NodeId) -> Vec<BlockId> {
        let Some(ids) = self.node_blocks.get(&node) else { return Vec::new() };
        ids.iter()
            .filter(|id| {
                let Some(b) = self.blocks.get(id) else { return false };
                let elsewhere = u32::try_from(
                    b.locations
                        .iter()
                        .filter(|n| **n != node && !self.decommissioning.contains(n))
                        .count(),
                )
                .unwrap_or(u32::MAX);
                elsewhere < b.expected_replication.min(self.eligible_datanodes(node))
            })
            .copied()
            .collect()
    }

    fn eligible_datanodes(&self, excluding: NodeId) -> u32 {
        u32::try_from(
            self.datanodes
                .iter()
                .filter(|(n, i)| i.alive && **n != excluding && !self.decommissioning.contains(n))
                .count(),
        )
        .unwrap_or(u32::MAX)
    }

    // ------------------------------------------------------------ restart

    /// Checkpoint: serialize the recoverable state to a fresh [`FsImage`]
    /// and clear the edit log (what the secondary NameNode did for the
    /// course cluster nightly; here also auto-triggered by
    /// `fs.checkpoint.txns`).
    pub fn checkpoint(&mut self) {
        let image = FsImage {
            namespace: self.namespace.clone(),
            blocks: self
                .blocks
                .iter()
                .map(|(&id, b)| BlockRecord {
                    id,
                    len: b.len,
                    expected_replication: b.expected_replication,
                    gen_stamp: b.gen_stamp,
                })
                .collect(),
            next_block_id: self.next_block_id,
            next_gen_stamp: self.next_gen_stamp,
            leases: self.leases.leases().cloned().collect(),
        };
        self.fsimage = image.to_bytes();
        self.editlog.checkpoint();
        self.metrics.incr("namenode", "checkpoints", 1);
    }

    /// The NameNode process dies. Every index the block reports built —
    /// replica locations, the per-node reverse index, census counters,
    /// replication queues — is gone with it, and every DataNode is unknown
    /// until it re-registers. Pure teardown, no journaling: this is the
    /// half of a restart that costs no downtime in real life (the dying
    /// process's memory is simply reclaimed), split out so the scale
    /// benchmark can time recovery proper. Idempotent; [`Self::restart`]
    /// is the only way back up.
    pub fn shutdown(&mut self) {
        if self.down {
            return;
        }
        // `Vec::clear` keeps each block's small allocation, so this is a
        // linear walk over the map, not a million frees.
        for b in self.blocks.values_mut() {
            b.locations.clear();
            b.pending_replicas = 0;
        }
        self.invalidations.clear();
        for held in self.node_blocks.values_mut() {
            held.clear();
        }
        self.reported_count = 0;
        self.total_location_count = 0;
        self.under = UnderReplicatedQueue::new();
        self.over.clear();
        for info in self.datanodes.values_mut() {
            info.alive = false;
        }
        self.down = true;
    }

    /// Simulate a full NameNode restart: tear the process down (unless
    /// [`Self::shutdown`] already did), deserialize the fsimage, replay
    /// only the edit-log *tail* written since the last checkpoint, rebuild
    /// leases for still-open files, and enter safe mode. Block reports
    /// must stream back in before the cluster is usable again.
    ///
    /// The image *prefix* (namespace, allocation counters, leases) is what
    /// recovery genuinely deserializes. The block-record section makes the
    /// image self-contained; debug builds parse it too and verify that
    /// image + tail reproduces the live block map entry-for-entry, while
    /// release builds trust the journal-verified map (the restart fidelity
    /// the simulator has always had) and keep recovery O(namespace + tail)
    /// instead of O(blocks).
    pub fn restart(&mut self, now: SimTime) -> Result<()> {
        self.shutdown();
        let image = FsImage::prefix_from_bytes(&self.fsimage)?;
        let mut ns = image.namespace;
        let mut next_block_id = image.next_block_id;
        let mut next_gen_stamp = image.next_gen_stamp;
        // path → lease holder, from the image plus the journaled tail.
        let mut holders: BTreeMap<String, String> =
            image.leases.into_iter().map(|l| (l.path, l.holder)).collect();
        // Debug-only shadow rebuild of the block map from the image's
        // records, checked against the live map after the tail replay.
        let mut rebuilt: Option<BTreeMap<BlockId, BlockInfo>> = if cfg!(debug_assertions) {
            Some(
                FsImage::from_bytes(&self.fsimage)?
                    .blocks
                    .iter()
                    .map(|r| {
                        (
                            r.id,
                            BlockInfo {
                                expected_replication: r.expected_replication,
                                len: r.len,
                                locations: Vec::new(),
                                pending_replicas: 0,
                                gen_stamp: r.gen_stamp,
                            },
                        )
                    })
                    .collect(),
            )
        } else {
            None
        };
        for op in self.editlog.ops() {
            match op {
                EditOp::Mkdirs { path } => ns.mkdirs(path)?,
                EditOp::Create { path, replication, block_size, at, holder } => {
                    ns.create_file(path, *replication, *block_size, *at)?;
                    holders.insert(path.clone(), holder.clone());
                }
                EditOp::AddBlock { path, block, len, gen_stamp } => {
                    let replication = ns.file(path)?.replication;
                    ns.append_block(path, *block, *len)?;
                    if let Some(m) = rebuilt.as_mut() {
                        m.insert(
                            *block,
                            BlockInfo {
                                expected_replication: replication,
                                len: *len,
                                locations: Vec::new(),
                                pending_replicas: 0,
                                gen_stamp: *gen_stamp,
                            },
                        );
                    }
                    next_block_id = next_block_id.max(block.0 + 1);
                    next_gen_stamp = next_gen_stamp.max(*gen_stamp + 1);
                }
                EditOp::Close { path } => {
                    ns.complete_file(path)?;
                    holders.remove(path);
                }
                EditOp::Delete { path, recursive } => {
                    for id in ns.delete(path, *recursive)? {
                        if let Some(m) = rebuilt.as_mut() {
                            m.remove(&id);
                        }
                    }
                    let prefix = format!("{path}/");
                    holders.retain(|p, _| p != path && !p.starts_with(&prefix));
                }
                EditOp::Rename { src, dst } => {
                    ns.rename(src, dst)?;
                    let prefix = format!("{src}/");
                    let moved: Vec<String> = holders
                        .keys()
                        .filter(|p| *p == src || p.starts_with(&prefix))
                        .cloned()
                        .collect();
                    for p in moved {
                        if let Some(h) = holders.remove(&p) {
                            holders.insert(format!("{dst}{}", &p[src.len()..]), h);
                        }
                    }
                }
                EditOp::SetReplication { path, replication } => {
                    let file = ns.file_mut(path)?;
                    file.replication = *replication;
                    let ids = file.blocks.clone();
                    if let Some(m) = rebuilt.as_mut() {
                        for id in ids {
                            if let Some(info) = m.get_mut(&id) {
                                info.expected_replication = *replication;
                            }
                        }
                    }
                }
                EditOp::BumpGenStamp { block, gen_stamp } => {
                    if let Some(m) = rebuilt.as_mut() {
                        if let Some(info) = m.get_mut(block) {
                            info.gen_stamp = (*gen_stamp).max(info.gen_stamp);
                        }
                    }
                    next_gen_stamp = next_gen_stamp.max(*gen_stamp + 1);
                }
                EditOp::AbandonBlock { path, block, len } => {
                    ns.abandon_block(path, *block, *len)?;
                    if let Some(m) = rebuilt.as_mut() {
                        m.remove(block);
                    }
                }
                EditOp::SetCodec { path, codec } => {
                    ns.file_mut(path)?.codec = *codec;
                }
            }
        }
        debug_assert_eq!(ns, self.namespace, "fsimage + tail must reproduce live namespace");
        if let Some(m) = &rebuilt {
            debug_assert_eq!(
                m.iter()
                    .map(|(&id, b)| (id, b.len, b.expected_replication, b.gen_stamp))
                    .collect::<Vec<_>>(),
                self.blocks
                    .iter()
                    .map(|(&id, b)| (id, b.len, b.expected_replication, b.gen_stamp))
                    .collect::<Vec<_>>(),
                "fsimage + tail must reproduce block metadata"
            );
        }
        // Files still open for write regain their leases (holder survives
        // via the image/journal) so the lease monitor can recover them.
        let mut open: Vec<(String, String)> = Vec::new();
        for (path, file) in ns.files_under("/")? {
            if !file.complete {
                let holder = holders.get(&path).cloned().unwrap_or_else(|| "recovery".to_string());
                open.push((path, holder));
            }
        }
        self.namespace = ns;
        self.next_block_id = next_block_id;
        self.next_gen_stamp = next_gen_stamp;
        self.leases.clear();
        for (path, holder) in open {
            self.leases.acquire(now, &path, &holder);
        }
        self.safemode = SafeMode::new(self.safemode.threshold, self.safemode.extension);
        self.down = false;
        // Restart semantics: point-in-time gauges died with the process,
        // monotonic counters and histograms survive (no double-counting).
        self.metrics.restart_daemon("namenode");
        self.metrics.incr("namenode", "restarts", 1);
        self.metrics.incr("namenode", "safemode.entered", 1);
        Ok(())
    }

    /// Refresh the "namenode" gauges from live state. Called by the DFS
    /// aggregator just before every snapshot so the gauges reflect the
    /// namespace/replication picture at snapshot time. All O(1) reads of
    /// the maintained indexes.
    pub fn sample_gauges(&mut self) {
        fn g(n: usize) -> i64 {
            i64::try_from(n).unwrap_or(i64::MAX)
        }
        let (reported, total) = self.block_census();
        let under = g(self.under.len());
        let missing = g(total.saturating_sub(reported));
        let open = g(self.open_files().len());
        let live = g(self.live_datanodes().len());
        let pending = g(self.editlog.len());
        let ram = i64::try_from(self.metadata_ram_bytes()).unwrap_or(i64::MAX);
        self.metrics.set_gauge("namenode", "blocks.total", g(total));
        self.metrics.set_gauge("namenode", "blocks.reported", g(reported));
        self.metrics.set_gauge("namenode", "blocks.under_replicated", under);
        self.metrics.set_gauge("namenode", "blocks.missing", missing);
        self.metrics.set_gauge("namenode", "leases.open", open);
        self.metrics.set_gauge("namenode", "datanodes.live", live);
        self.metrics.set_gauge("namenode", "safemode.on", i64::from(self.safemode.is_on()));
        self.metrics.set_gauge("namenode", "editlog.pending_ops", pending);
        self.metrics.set_gauge("namenode", "metadata.ram_bytes", ram);
    }

    /// Rough bytes of NameNode RAM the metadata occupies (the Figure 2
    /// "block metadata lives in memory" talking point, used by the fsck
    /// report). ~150 B per inode + ~(150 + 30·replicas) B per block, the
    /// folklore numbers for Hadoop 1.x. O(1): replica totals are counted
    /// incrementally.
    pub fn metadata_ram_bytes(&self) -> u64 {
        let (dirs, files, _) = self.namespace.stats();
        let inode_bytes = 150 * (dirs + files) as u64;
        let block_bytes =
            150 * u64::try_from(self.blocks.len()).unwrap_or(0) + 30 * self.total_location_count;
        inode_bytes + block_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nn(nodes: usize) -> NameNode {
        let mut config = Configuration::with_defaults();
        config.set(keys::DFS_SAFEMODE_EXTENSION_SECS, 0);
        let mut nn = NameNode::new(&config, Topology::flat(nodes)).unwrap();
        for i in 0..nodes as u32 {
            nn.register_datanode(SimTime::ZERO, NodeId(i), u64::MAX / 2);
        }
        // Fresh cluster: empty namespace exits safe mode on first census.
        nn.safemode.update(SimTime::ZERO, 0, 0);
        nn
    }

    /// Create a file with `blocks` blocks and report all replicas in.
    fn populate(nn: &mut NameNode, path: &str, blocks: usize) -> Vec<BlockId> {
        nn.mkdirs("/data").unwrap();
        nn.create_file(SimTime::ZERO, path, None, None, "tester").unwrap();
        let mut ids = Vec::new();
        for _ in 0..blocks {
            let (id, targets) = nn.add_block(SimTime::ZERO, path, 64, None).unwrap();
            for t in targets {
                nn.block_received(SimTime::ZERO, t, id);
            }
            ids.push(id);
        }
        nn.complete_file(path).unwrap();
        ids
    }

    /// `node` re-reports everything the NameNode believes it holds,
    /// except `drop` — i.e. the replica silently vanished.
    fn report_without(nn: &mut NameNode, node: NodeId, drop: BlockId) {
        let report: Vec<ReplicaMeta> = nn
            .node_blocks
            .get(&node)
            .map(|s| s.to_vec())
            .unwrap_or_default()
            .into_iter()
            .filter(|&b| b != drop)
            .map(|b| ReplicaMeta {
                id: b,
                len: nn.block(b).map(|i| i.len).unwrap_or(0),
                gen_stamp: nn.block(b).map(|i| i.gen_stamp).unwrap_or(FIRST_GEN_STAMP),
            })
            .collect();
        nn.process_block_report(SimTime(1), node, &report);
    }

    #[test]
    fn write_path_allocates_and_tracks_replicas() {
        let mut nn = nn(4);
        let ids = populate(&mut nn, "/data/f", 2);
        assert_eq!(ids.len(), 2);
        for id in &ids {
            assert_eq!(nn.block_locations(*id).len(), 3);
        }
        assert!(nn.under_replicated().is_empty());
        assert!(nn.missing_blocks().is_empty());
        let f = nn.namespace().file("/data/f").unwrap();
        assert!(f.complete);
        assert_eq!(f.len, 128);
    }

    #[test]
    fn safemode_blocks_mutations() {
        let config = Configuration::with_defaults();
        let mut nn = NameNode::new(&config, Topology::flat(2)).unwrap();
        assert!(nn.safemode.is_on());
        assert!(matches!(nn.mkdirs("/x"), Err(HlError::SafeMode(_))));
        assert!(matches!(
            nn.create_file(SimTime::ZERO, "/x", None, None, "tester"),
            Err(HlError::SafeMode(_))
        ));
        nn.safemode.force_leave();
        nn.mkdirs("/x").unwrap();
    }

    #[test]
    fn dead_datanode_causes_under_replication() {
        let mut nn = nn(4);
        let ids = populate(&mut nn, "/data/f", 3);
        // Heartbeats for everyone except node 0, far in the future.
        let later = SimTime::ZERO + SimDuration::from_mins(20);
        for i in 1..4 {
            nn.heartbeat(later, NodeId(i), u64::MAX / 2);
        }
        let dead = nn.check_heartbeats(later);
        assert_eq!(dead, vec![NodeId(0)]);
        // Blocks that had a replica on node0 are now under-replicated.
        let under = nn.under_replicated();
        assert!(!under.is_empty());
        for (id, have, want) in under {
            assert!(ids.contains(&id));
            assert_eq!(want, 3);
            assert_eq!(have, 2);
        }
    }

    #[test]
    fn replication_monitor_emits_copy_commands_once() {
        let mut nn = nn(4);
        populate(&mut nn, "/data/f", 2);
        let later = SimTime::ZERO + SimDuration::from_mins(20);
        for i in 1..4 {
            nn.heartbeat(later, NodeId(i), u64::MAX / 2);
        }
        nn.check_heartbeats(later);
        let work = nn.replication_work(later, 100);
        let affected = nn.under_replicated().len();
        assert_eq!(affected, 0, "all under-replicated blocks have pending work");
        assert!(!work.is_empty());
        for cmd in &work {
            match cmd {
                DnCommand::Replicate { from, to, .. } => {
                    assert_ne!(from, to);
                    assert_ne!(*to, NodeId(0), "dead node cannot be a target");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Second pass finds nothing (pending suppresses duplicates).
        assert!(nn.replication_work(later, 100).is_empty());
        // Completing the copies restores full replication.
        for cmd in work {
            if let DnCommand::Replicate { block, to, .. } = cmd {
                nn.block_received(later, to, block);
            }
        }
        assert!(nn.under_replicated().is_empty());
    }

    #[test]
    fn over_replication_invalidates_extras() {
        let mut nn = nn(4);
        let ids = populate(&mut nn, "/data/f", 1);
        // A fourth replica appears (e.g. a dead node came back after
        // re-replication already happened).
        let holders = nn.block_locations(ids[0]);
        let extra = (0..4u32).map(NodeId).find(|n| !holders.contains(n)).unwrap();
        let cmds = nn.block_received(SimTime::ZERO, extra, ids[0]);
        assert_eq!(cmds.len(), 1);
        match &cmds[0] {
            DnCommand::Invalidate { block, node } => {
                assert_eq!(*block, ids[0]);
                assert_ne!(*node, extra, "the just-reported replica survives");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(nn.block_locations(ids[0]).len(), 3);
    }

    #[test]
    fn delete_emits_invalidations_for_all_replicas() {
        let mut nn = nn(4);
        populate(&mut nn, "/data/f", 2);
        let cmds = nn.delete("/data/f", false).unwrap();
        assert_eq!(cmds.len(), 6); // 2 blocks × 3 replicas
        assert!(nn.missing_blocks().is_empty(), "deleted blocks are forgotten entirely");
        assert!(!nn.namespace().exists("/data/f"));
    }

    #[test]
    fn restart_rebuilds_from_journal_and_reenters_safemode() {
        let mut nn = nn(4);
        let ids = populate(&mut nn, "/data/f", 4);
        nn.checkpoint();
        // More activity after the checkpoint, so replay matters.
        nn.create_file(SimTime::ZERO, "/data/g", None, None, "tester").unwrap();
        let (id_g, targets) = nn.add_block(SimTime::ZERO, "/data/g", 10, None).unwrap();
        for t in targets {
            nn.block_received(SimTime::ZERO, t, id_g);
        }
        nn.complete_file("/data/g").unwrap();

        nn.restart(SimTime(0)).unwrap();
        assert!(nn.safemode.is_on());
        assert!(nn.namespace().exists("/data/g"), "post-checkpoint ops replayed");
        assert_eq!(nn.block_census(), (0, 5), "locations forgotten");
        assert!(matches!(nn.mkdirs("/y"), Err(HlError::SafeMode(_))));

        // DataNodes re-register and report; safe mode exits (extension 0).
        let t = SimTime(1);
        for i in 0..4u32 {
            nn.register_datanode(t, NodeId(i), u64::MAX / 2);
        }
        // Rebuild per-node reports from what populate() placed: every node
        // reports all blocks it could hold; over-reporting is fine for the
        // census, invalidations trim later.
        let all: Vec<ReplicaMeta> = ids
            .iter()
            .map(|&b| (b, 64))
            .chain(std::iter::once((id_g, 10)))
            .map(|(b, len)| ReplicaMeta {
                id: b,
                len,
                gen_stamp: nn.block(b).map(|i| i.gen_stamp).unwrap_or(FIRST_GEN_STAMP),
            })
            .collect();
        let mut exited = false;
        for i in 0..4u32 {
            exited |= nn.process_block_report(t, NodeId(i), &all);
        }
        assert!(exited);
        assert!(!nn.safemode.is_on());
        nn.mkdirs("/y").unwrap();
    }

    #[test]
    fn block_report_removes_stale_locations() {
        let mut nn = nn(4);
        let ids = populate(&mut nn, "/data/f", 1);
        let holders = nn.block_locations(ids[0]);
        let holder = holders[0];
        // The holder reports an empty disk (scratch purged).
        nn.process_block_report(SimTime(10), holder, &[]);
        assert!(!nn.block_locations(ids[0]).contains(&holder));
        assert_eq!(nn.block_locations(ids[0]).len(), 2);
    }

    #[test]
    fn no_datanodes_means_insufficient_replication() {
        let config = Configuration::with_defaults();
        let mut nn = NameNode::new(&config, Topology::flat(0)).unwrap();
        nn.safemode.force_leave();
        nn.mkdirs("/d").unwrap();
        nn.create_file(SimTime::ZERO, "/d/f", None, None, "tester").unwrap();
        assert!(matches!(
            nn.add_block(SimTime::ZERO, "/d/f", 64, None),
            Err(HlError::InsufficientReplication { .. })
        ));
    }

    #[test]
    fn metadata_ram_grows_with_namespace() {
        let mut nn = nn(4);
        let before = nn.metadata_ram_bytes();
        populate(&mut nn, "/data/f", 10);
        assert!(nn.metadata_ram_bytes() > before + 10 * 150);
    }

    #[test]
    fn census_counters_match_recount() {
        let mut nn = nn(4);
        populate(&mut nn, "/data/f", 5);
        let recount = |nn: &NameNode| {
            let reported = nn.blocks.values().filter(|b| !b.locations.is_empty()).count();
            let locations: u64 = nn.blocks.values().map(|b| b.locations.len() as u64).sum();
            (reported, locations)
        };
        assert_eq!((nn.reported_count, nn.total_location_count), recount(&nn));
        assert_eq!(nn.block_census(), (5, 5));

        // A node dies: counters track the removals exactly.
        let later = SimTime::ZERO + SimDuration::from_mins(20);
        for i in 1..4 {
            nn.heartbeat(later, NodeId(i), u64::MAX / 2);
        }
        nn.check_heartbeats(later);
        assert_eq!((nn.reported_count, nn.total_location_count), recount(&nn));

        // Deletion forgets blocks and all their locations.
        nn.safemode.force_leave();
        nn.delete("/data/f", false).unwrap();
        assert_eq!((nn.reported_count, nn.total_location_count), recount(&nn));
        assert_eq!(nn.block_census(), (0, 0));
    }

    #[test]
    fn incremental_reports_apply_deltas() {
        let mut nn = nn(4);
        let ids = populate(&mut nn, "/data/f", 2);
        let holders = nn.block_locations(ids[0]);
        let gone = holders[0];

        // A deleted delta retracts the location.
        let exited = nn.process_incremental_report(
            SimTime(1),
            gone,
            &IncrementalBlockReport { received: Vec::new(), deleted: vec![ids[0]] },
        );
        assert!(!exited);
        assert!(!nn.block_locations(ids[0]).contains(&gone));
        assert_eq!(nn.under_replicated(), vec![(ids[0], 2, 3)]);

        // The replica comes back via a received delta.
        let gs = nn.block(ids[0]).unwrap().gen_stamp;
        nn.process_incremental_report(
            SimTime(2),
            gone,
            &IncrementalBlockReport {
                received: vec![ReplicaMeta { id: ids[0], len: 64, gen_stamp: gs }],
                deleted: Vec::new(),
            },
        );
        assert!(nn.under_replicated().is_empty());
        assert!(nn.block_locations(ids[0]).contains(&gone));

        // Unknown blocks and stale stamps get queued for invalidation.
        let n1 = nn.block_locations(ids[1])[0];
        let gs1 = nn.block(ids[1]).unwrap().gen_stamp;
        nn.process_incremental_report(
            SimTime(3),
            n1,
            &IncrementalBlockReport {
                received: vec![
                    ReplicaMeta { id: BlockId(999), len: 1, gen_stamp: gs },
                    ReplicaMeta { id: ids[1], len: 64, gen_stamp: gs1 - 1 },
                ],
                deleted: Vec::new(),
            },
        );
        assert!(!nn.block_locations(ids[1]).contains(&n1), "stale replica dropped");
        let work = nn.replication_work(SimTime(3), 100);
        assert!(work.contains(&DnCommand::Invalidate { block: BlockId(999), node: n1 }));
        assert!(work.contains(&DnCommand::Invalidate { block: ids[1], node: n1 }));
    }

    #[test]
    fn replication_queue_prioritizes_most_missing() {
        let mut nn = nn(6);
        nn.mkdirs("/data").unwrap();
        let make = |nn: &mut NameNode, path: &str| {
            nn.create_file(SimTime::ZERO, path, None, None, "tester").unwrap();
            let (id, targets) = nn.add_block(SimTime::ZERO, path, 64, None).unwrap();
            for &t in &targets {
                nn.block_received(SimTime::ZERO, t, id);
            }
            nn.complete_file(path).unwrap();
            (id, targets)
        };
        let (a, ta) = make(&mut nn, "/data/a");
        let (b, tb) = make(&mut nn, "/data/b");
        // Block a loses two replicas, block b loses one.
        report_without(&mut nn, ta[0], a);
        report_without(&mut nn, ta[1], a);
        report_without(&mut nn, tb[0], b);
        assert_eq!(nn.block_locations(a).len(), 1);
        assert_eq!(nn.block_locations(b).len(), 2);
        // With room for a single task, the most-missing block goes first.
        let work = nn.replication_work(SimTime(1), 1);
        assert_eq!(work.len(), 1);
        match &work[0] {
            DnCommand::Replicate { block, .. } => {
                assert_eq!(*block, a, "most-missing block is served first");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn journal_auto_checkpoints_at_threshold() {
        let mut config = Configuration::with_defaults();
        config.set(keys::DFS_SAFEMODE_EXTENSION_SECS, 0);
        config.set(keys::DFS_CHECKPOINT_OPS, 4u64);
        let mut nn = NameNode::new(&config, Topology::flat(4)).unwrap();
        for i in 0..4u32 {
            nn.register_datanode(SimTime::ZERO, NodeId(i), u64::MAX / 2);
        }
        nn.safemode.update(SimTime::ZERO, 0, 0);
        for i in 0..10 {
            nn.mkdirs(&format!("/d{i}")).unwrap();
        }
        assert!(nn.editlog.len() < 4, "auto-checkpoint keeps the journal tail bounded");
        // The image + tail reproduce everything across a restart.
        nn.restart(SimTime(1)).unwrap();
        for i in 0..10 {
            assert!(nn.namespace().exists(&format!("/d{i}")));
        }
    }

    #[test]
    fn restart_rebuilds_leases_for_open_files() {
        let mut nn = nn(4);
        nn.mkdirs("/data").unwrap();
        // One file open since before the checkpoint (holder rides the
        // image), one opened after (holder rides the journal tail).
        nn.create_file(SimTime::ZERO, "/data/old", None, None, "writer-img").unwrap();
        let (id, targets) = nn.add_block(SimTime::ZERO, "/data/old", 64, None).unwrap();
        for t in targets {
            nn.block_received(SimTime::ZERO, t, id);
        }
        nn.checkpoint();
        nn.create_file(SimTime(2), "/data/new", None, None, "writer-tail").unwrap();

        nn.restart(SimTime(5)).unwrap();
        let old = nn.lease("/data/old").expect("open file regains its lease");
        assert_eq!(old.holder, "writer-img");
        assert_eq!(old.renewed_at, SimTime(5), "lease clock restarts at recovery time");
        let new = nn.lease("/data/new").expect("tail-created file regains its lease");
        assert_eq!(new.holder, "writer-tail");
        assert!(nn.lease("/data/f").is_none());
    }
}
