//! # hl-dfs
//!
//! A from-scratch HDFS (Hadoop 1.x) analog: the substrate the course's
//! second lecture, second lab, and second assignment revolve around.
//!
//! Architecture follows the paper's Figure 2 exactly:
//!
//! * the [`namenode::NameNode`] keeps the entire namespace and
//!   block→location map **in memory**, persists namespace mutations to an
//!   [`editlog::EditLog`], runs [`safemode`] on startup, and drives
//!   re-replication of under-replicated blocks;
//! * each [`datanode::DataNode`] stores [`block`]s as checksummed chunks,
//!   scans them for integrity (the slow restart students suffered), and
//!   reports them to the NameNode;
//! * the [`client::Dfs`] facade implements the user-visible operations —
//!   pipeline writes (with mid-write DataNode failure recovery via
//!   generation stamps), locality-aware reads with dead-node failover,
//!   `copyFromLocal`/`copyToLocal` — charging every byte against the
//!   cluster's disks and network;
//! * [`lease`] gives every file open for write a soft/hard-expiring lease
//!   so crashed writers get their files recovered to a consistent length;
//! * [`fsck`] renders the health report and [`shell`] the
//!   `hadoop fs` command surface that assignment 2 asks students to record.
//!
//! All computation is real (real bytes, real CRC32s); time is virtual.
//! Blocks may alternatively carry a [`block::BlockPayload::Synthetic`]
//! payload — a length without bytes — so staging-time experiments can model
//! the paper's 171 GB Google trace without allocating it.

#![warn(missing_docs)]

pub mod admin;
pub mod block;
pub mod client;
pub mod datanode;
pub mod editlog;
pub mod fsck;
pub mod fsimage;
pub mod lease;
pub mod namenode;
pub mod namespace;
pub mod placement;
pub mod safemode;
pub mod shell;

pub use block::{BlockId, BlockPayload, ReplicaMeta};
pub use client::{Dfs, PipelineFault};
pub use datanode::DataNode;
pub use lease::{Lease, LeaseState};
pub use namenode::NameNode;
