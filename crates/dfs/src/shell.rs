//! The `hadoop fs` shell surface.
//!
//! Assignment 2 requires students to run and record `hadoop fs` commands;
//! the lab tutorials teach `-ls`, `-mkdir`, `-put`/`-copyFromLocal`,
//! `-get`/`-copyToLocal`, `-cat`, `-rm`/`-rmr`, `-du`, and `fsck`. The
//! shell parses one command line, executes it against a [`Dfs`], and
//! renders output shaped like Hadoop 1.x's.

use hl_cluster::network::ClusterNet;
use hl_common::prelude::*;
use hl_common::units::ByteSize;

use crate::client::Dfs;
use crate::fsck;

/// Result of one shell invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShellOutput {
    /// What would be printed to stdout.
    pub stdout: String,
    /// When the command finished (virtual time).
    pub completed_at: SimTime,
}

/// A "local file system" the shell can stage data in and out of —
/// stand-in for the student's home directory on the login node.
#[derive(Debug, Clone, Default)]
pub struct LocalFs {
    files: std::collections::BTreeMap<String, Vec<u8>>,
}

impl LocalFs {
    /// Empty local FS.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create/overwrite a local file.
    pub fn write(&mut self, path: &str, data: impl Into<Vec<u8>>) {
        self.files.insert(path.to_string(), data.into());
    }

    /// Read a local file.
    pub fn read(&self, path: &str) -> Result<&[u8]> {
        self.files
            .get(path)
            .map(Vec::as_slice)
            .ok_or_else(|| HlError::FileNotFound(path.to_string()))
    }

    /// Does the file exist?
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }
}

/// The shell: wraps a DFS, a network, and a local FS.
pub struct DfsShell<'a> {
    /// The file system under test.
    pub dfs: &'a mut Dfs,
    /// The cluster's bandwidth resources.
    pub net: &'a mut ClusterNet,
    /// The login-node local file system.
    pub local: &'a mut LocalFs,
}

impl<'a> DfsShell<'a> {
    /// Run one `hadoop fs <args...>` command line at virtual time `now`.
    ///
    /// Supported: `-ls p`, `-mkdir p`, `-put l p`, `-copyFromLocal l p`,
    /// `-get p l`, `-copyToLocal p l`, `-cat p`, `-rm p`, `-rmr p`,
    /// `-du p`, `-fsck p`, `-setrep n p`, `-report`, `-metrics`,
    /// `-safemode enter|leave|get`, `-recoverLease p`.
    pub fn run(&mut self, now: SimTime, line: &str) -> Result<ShellOutput> {
        let args: Vec<&str> = line.split_whitespace().collect();
        let (cmd, rest) =
            args.split_first().ok_or_else(|| HlError::Config("empty command".into()))?;
        match (*cmd, rest) {
            ("-ls", [path]) => {
                let rows = self.dfs.namenode.list(path)?;
                let mut out = format!("Found {} items\n", rows.len());
                for r in &rows {
                    // drwxr-xr-x   - user group          0 /path
                    out.push_str(&format!(
                        "{}   {} {:>12} {}\n",
                        if r.is_dir { "drwxr-xr-x" } else { "-rw-r--r--" },
                        if r.is_dir { "-".to_string() } else { r.replication.to_string() },
                        r.len,
                        r.path
                    ));
                }
                Ok(ShellOutput { stdout: out, completed_at: now })
            }
            ("-mkdir", [path]) => {
                self.dfs.namenode.mkdirs(path)?;
                Ok(ShellOutput { stdout: String::new(), completed_at: now })
            }
            ("-put" | "-copyFromLocal", [local, path]) => {
                let data = self.local.read(local)?.to_vec();
                let t = self.dfs.put(self.net, now, path, &data, None)?;
                Ok(ShellOutput { stdout: String::new(), completed_at: t.completed_at })
            }
            ("-get" | "-copyToLocal", [path, local]) => {
                let got = self.dfs.read(self.net, now, path, None)?;
                self.local.write(local, got.value);
                Ok(ShellOutput { stdout: String::new(), completed_at: got.completed_at })
            }
            ("-cat", [path]) => {
                let got = self.dfs.read(self.net, now, path, None)?;
                let text = String::from_utf8_lossy(&got.value).into_owned();
                Ok(ShellOutput { stdout: text, completed_at: got.completed_at })
            }
            ("-rm", [path]) => {
                let cmds = self.dfs.namenode.delete(path, false)?;
                self.dfs.apply_commands(self.net, now, &cmds);
                Ok(ShellOutput { stdout: format!("Deleted {path}\n"), completed_at: now })
            }
            ("-rmr", [path]) => {
                let cmds = self.dfs.namenode.delete(path, true)?;
                self.dfs.apply_commands(self.net, now, &cmds);
                Ok(ShellOutput { stdout: format!("Deleted {path}\n"), completed_at: now })
            }
            ("-du", [path]) => {
                let rows = self.dfs.namenode.list(path)?;
                let mut out = String::new();
                for r in &rows {
                    let size =
                        if r.is_dir { self.dfs.namenode.namespace().du(&r.path)? } else { r.len };
                    out.push_str(&format!("{:>12}  {}\n", size, r.path));
                }
                out.push_str(&format!(
                    "total: {}\n",
                    ByteSize::display(self.dfs.namenode.namespace().du(path)?)
                ));
                Ok(ShellOutput { stdout: out, completed_at: now })
            }
            ("-setrep", [n, path]) => {
                let replication: u32 =
                    n.parse().map_err(|_| HlError::Config(format!("bad replication {n:?}")))?;
                self.dfs.namenode.set_replication(path, replication)?;
                // The monitor adds/trims one replica per block per pass;
                // a few passes converge any realistic setrep delta.
                for _ in 0..4 {
                    self.dfs.heartbeat_round(self.net, now);
                }
                Ok(ShellOutput {
                    stdout: format!("Replication {replication} set: {path}\n"),
                    completed_at: now,
                })
            }
            ("-safemode", [action]) => {
                let nn = &mut self.dfs.namenode;
                let out = match *action {
                    "enter" => {
                        nn.safemode.force_enter();
                        "Safe mode is ON\n".to_string()
                    }
                    "leave" => {
                        nn.safemode.force_leave();
                        "Safe mode is OFF\n".to_string()
                    }
                    "get" => {
                        let (r, e) = nn.block_census();
                        format!("{}\n", nn.safemode.status(r, e))
                    }
                    other => {
                        return Err(HlError::Config(format!(
                            "Usage: -safemode enter|leave|get (got {other:?})"
                        )))
                    }
                };
                Ok(ShellOutput { stdout: out, completed_at: now })
            }
            ("-report", []) => {
                let r = crate::admin::report(self.dfs);
                Ok(ShellOutput { stdout: r.to_string(), completed_at: now })
            }
            ("-metrics", []) => {
                let snap = self.dfs.metrics_snapshot(now);
                let text = hl_metrics::MetricsReport(&snap).to_string();
                Ok(ShellOutput { stdout: text, completed_at: now })
            }
            ("-fsck", [path]) => {
                let report = fsck::fsck(self.dfs, path)?;
                Ok(ShellOutput { stdout: report.to_string(), completed_at: now })
            }
            ("-recoverLease", [path]) => {
                // Starting recovery leaves the lease observable as
                // RECOVERING in fsck; the next lease-monitor tick (any
                // heartbeat round) finalizes the file — the two-step story
                // students can watch happen.
                let out = if self.dfs.namenode.recover_lease(path)? {
                    format!("recoverLease SUCCEEDED on {path}: file is closed\n")
                } else {
                    format!("recoverLease STARTED on {path}: recovery in progress\n")
                };
                Ok(ShellOutput { stdout: out, completed_at: now })
            }
            _ => Err(HlError::Config(format!("unknown or malformed command: {line:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_cluster::node::ClusterSpec;
    use hl_common::config::keys;

    fn setup() -> (Dfs, ClusterNet, LocalFs) {
        let spec = ClusterSpec::course_hadoop(4);
        let mut config = Configuration::with_defaults();
        config.set(keys::DFS_BLOCK_SIZE, 512u64);
        (Dfs::format(&config, &spec).unwrap(), ClusterNet::new(&spec), LocalFs::new())
    }

    #[test]
    fn lab_session_transcript() {
        let (mut dfs, mut net, mut local) = setup();
        local.write("wordcount_input.txt", b"hello hadoop hello hdfs\n".to_vec());
        let mut shell = DfsShell { dfs: &mut dfs, net: &mut net, local: &mut local };

        shell.run(SimTime::ZERO, "-mkdir /user/alice/input").unwrap();
        let put = shell
            .run(SimTime::ZERO, "-put wordcount_input.txt /user/alice/input/data.txt")
            .unwrap();

        let ls = shell.run(put.completed_at, "-ls /user/alice/input").unwrap();
        assert!(ls.stdout.contains("Found 1 items"));
        assert!(ls.stdout.contains("/user/alice/input/data.txt"));
        assert!(ls.stdout.contains("-rw-r--r--"));

        let cat = shell.run(put.completed_at, "-cat /user/alice/input/data.txt").unwrap();
        assert_eq!(cat.stdout, "hello hadoop hello hdfs\n");

        let get = shell.run(cat.completed_at, "-get /user/alice/input/data.txt out.txt").unwrap();
        assert_eq!(shell.local.read("out.txt").unwrap(), b"hello hadoop hello hdfs\n");
        let _ = get;

        let du = shell.run(cat.completed_at, "-du /user/alice").unwrap();
        assert!(du.stdout.contains("/user/alice/input"));

        let fsck_out = shell.run(cat.completed_at, "-fsck /").unwrap();
        assert!(fsck_out.stdout.contains("Status: HEALTHY"));

        let rm = shell.run(cat.completed_at, "-rmr /user/alice").unwrap();
        assert!(rm.stdout.contains("Deleted"));
        assert!(shell.run(cat.completed_at, "-ls /user/alice").is_err());
    }

    #[test]
    fn rm_refuses_nonempty_dirs_rmr_removes_them() {
        let (mut dfs, mut net, mut local) = setup();
        local.write("f", b"x".to_vec());
        let mut shell = DfsShell { dfs: &mut dfs, net: &mut net, local: &mut local };
        shell.run(SimTime::ZERO, "-mkdir /d").unwrap();
        shell.run(SimTime::ZERO, "-put f /d/f").unwrap();
        assert!(shell.run(SimTime::ZERO, "-rm /d").is_err());
        shell.run(SimTime::ZERO, "-rmr /d").unwrap();
    }

    #[test]
    fn unknown_commands_and_missing_files_error() {
        let (mut dfs, mut net, mut local) = setup();
        let mut shell = DfsShell { dfs: &mut dfs, net: &mut net, local: &mut local };
        assert!(shell.run(SimTime::ZERO, "-frobnicate /x").is_err());
        assert!(shell.run(SimTime::ZERO, "").is_err());
        assert!(shell.run(SimTime::ZERO, "-cat /nope").is_err());
        assert!(shell.run(SimTime::ZERO, "-put missing.txt /x").is_err());
    }

    #[test]
    fn setrep_up_and_down_converges() {
        let (mut dfs, mut net, mut local) = setup();
        local.write("f", vec![1u8; 600]);
        let mut shell = DfsShell { dfs: &mut dfs, net: &mut net, local: &mut local };
        shell.run(SimTime::ZERO, "-mkdir /d").unwrap();
        shell.run(SimTime::ZERO, "-put f /d/f").unwrap();
        // Down to 2: excess replicas trimmed.
        let out = shell.run(SimTime::ZERO, "-setrep 2 /d/f").unwrap();
        assert!(out.stdout.contains("Replication 2 set"));
        for (_, _, holders) in shell.dfs.file_blocks("/d/f").unwrap() {
            assert_eq!(holders.len(), 2);
        }
        // Back up to 4 (on a 4-node cluster): re-replicated.
        shell.run(SimTime::ZERO, "-setrep 4 /d/f").unwrap();
        for (_, _, holders) in shell.dfs.file_blocks("/d/f").unwrap() {
            assert_eq!(holders.len(), 4);
        }
        // Bad args rejected.
        assert!(shell.run(SimTime::ZERO, "-setrep zero /d/f").is_err());
        assert!(shell.run(SimTime::ZERO, "-setrep 0 /d/f").is_err());
        // -report renders.
        let rep = shell.run(SimTime::ZERO, "-report").unwrap();
        assert!(rep.stdout.contains("Datanodes available: 4"));
    }

    #[test]
    fn safemode_admin_commands() {
        let (mut dfs, mut net, mut local) = setup();
        local.write("f", b"x".to_vec());
        let mut shell = DfsShell { dfs: &mut dfs, net: &mut net, local: &mut local };
        let get = shell.run(SimTime::ZERO, "-safemode get").unwrap();
        assert!(get.stdout.contains("Safe mode is OFF"));
        shell.run(SimTime::ZERO, "-safemode enter").unwrap();
        // Mutations refused while on.
        assert!(shell.run(SimTime::ZERO, "-mkdir /x").is_err());
        assert!(shell.run(SimTime::ZERO, "-put f /x").is_err());
        let get = shell.run(SimTime::ZERO, "-safemode get").unwrap();
        assert!(get.stdout.contains("Safe mode is ON"));
        shell.run(SimTime::ZERO, "-safemode leave").unwrap();
        shell.run(SimTime::ZERO, "-mkdir /x").unwrap();
        assert!(shell.run(SimTime::ZERO, "-safemode maybe").is_err());
    }

    #[test]
    fn recover_lease_walks_open_file_to_closed() {
        let (mut dfs, mut net, mut local) = setup();
        dfs.namenode.mkdirs("/d").unwrap();
        // A writer crashes after one 512 B block, leaving /d/open leased.
        dfs.arm_pipeline_fault(crate::client::PipelineFault::CrashWriter { after_blocks: 1 });
        dfs.put(&mut net, SimTime::ZERO, "/d/open", &[7u8; 1200], None).unwrap_err();

        let mut shell = DfsShell { dfs: &mut dfs, net: &mut net, local: &mut local };
        let out = shell.run(SimTime::ZERO, "-fsck /").unwrap();
        assert!(out.stdout.contains("OPEN_FOR_WRITE"));
        assert!(out.stdout.contains("Files open for write:\t1"));

        let started = shell.run(SimTime::ZERO, "-recoverLease /d/open").unwrap();
        assert!(started.stdout.contains("recoverLease STARTED on /d/open"));
        // Recovery is observable before the next lease check finalizes it.
        let out = shell.run(SimTime::ZERO, "-fsck /").unwrap();
        assert!(out.stdout.contains("RECOVERING"));

        dfs.heartbeat_round(&mut net, SimTime(1));
        let mut shell = DfsShell { dfs: &mut dfs, net: &mut net, local: &mut local };
        let done = shell.run(SimTime(1), "-recoverLease /d/open").unwrap();
        assert!(done.stdout.contains("recoverLease SUCCEEDED on /d/open"));
        // Closed at the one confirmed block; content reads back clean.
        let cat = shell.run(SimTime(1), "-cat /d/open").unwrap();
        assert_eq!(cat.stdout.len(), 512);
        assert!(shell.run(SimTime(1), "-recoverLease /nope").is_err());
    }

    #[test]
    fn metrics_verb_renders_the_cluster_report() {
        let (mut dfs, mut net, mut local) = setup();
        local.write("f", vec![1u8; 600]);
        let mut shell = DfsShell { dfs: &mut dfs, net: &mut net, local: &mut local };
        shell.run(SimTime::ZERO, "-mkdir /d").unwrap();
        let put = shell.run(SimTime::ZERO, "-put f /d/f").unwrap();
        let out = shell.run(put.completed_at, "-metrics").unwrap();
        assert!(out.stdout.starts_with("Metrics report at "));
        assert!(out.stdout.contains("Name: namenode"));
        assert!(out.stdout.contains("rpc.add_block"));
        assert!(out.stdout.contains("Name: datanode.node000"));
        assert!(out.stdout.contains("bytes.written"));
        // Malformed invocations are rejected.
        assert!(shell.run(SimTime::ZERO, "-metrics /x").is_err());
    }

    #[test]
    fn deleted_file_blocks_are_invalidated_on_datanodes() {
        let (mut dfs, mut net, mut local) = setup();
        local.write("f", vec![1u8; 600]);
        let mut shell = DfsShell { dfs: &mut dfs, net: &mut net, local: &mut local };
        shell.run(SimTime::ZERO, "-mkdir /d").unwrap();
        shell.run(SimTime::ZERO, "-put f /d/f").unwrap();
        let blocks = shell.dfs.file_blocks("/d/f").unwrap();
        shell.run(SimTime::ZERO, "-rm /d/f").unwrap();
        for (id, _, holders) in blocks {
            for h in holders {
                assert!(!shell.dfs.datanode(h).unwrap().has_block(id));
            }
        }
    }
}
