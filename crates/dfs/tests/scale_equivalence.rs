//! Equivalence properties for the scalable NameNode protocols.
//!
//! Two claims keep the fast paths honest:
//!
//! 1. **Incremental + periodic full reports ≡ full reports only.** A
//!    NameNode fed only deltas (with occasional anti-entropy full
//!    reports) must converge to exactly the state a NameNode fed one
//!    final full report per node reaches — same locations, same census,
//!    same replication queues.
//! 2. **Fsimage + edit-log tail ≡ full journal replay.** A NameNode that
//!    checkpoints aggressively (short tails) and one that never
//!    checkpoints (restart replays every op since format) must recover
//!    identical metadata from the same op sequence.

use proptest::prelude::*;

use hl_common::config::keys;
use hl_common::prelude::*;
use hl_dfs::block::{IncrementalBlockReport, ReplicaMeta};
use hl_dfs::namenode::NameNode;
use hl_dfs::BlockId;

fn node(i: usize) -> NodeId {
    NodeId(u32::try_from(i).unwrap_or(u32::MAX))
}

/// A NameNode with `nodes` registered DataNodes, safe mode already
/// satisfied, and `files` two-block files in `/eq`.
fn seeded_namenode(nodes: usize, files: usize, checkpoint_ops: u64) -> (NameNode, Vec<BlockId>) {
    let mut config = Configuration::with_defaults();
    config.set(keys::DFS_BLOCK_SIZE, 1024u64);
    config.set(keys::DFS_SAFEMODE_EXTENSION_SECS, 0u64);
    config.set(keys::DFS_CHECKPOINT_OPS, checkpoint_ops);
    let mut nn = NameNode::new(&config, Topology::striped(nodes, 4)).unwrap();
    for i in 0..nodes {
        nn.register_datanode(SimTime::ZERO, node(i), u64::MAX / 2);
    }
    nn.safemode.update(SimTime::ZERO, 0, 0);
    let mut ids = Vec::new();
    nn.mkdirs("/eq").unwrap();
    for f in 0..files {
        let path = format!("/eq/f{f}");
        nn.create_file(SimTime::ZERO, &path, Some(3), None, "writer").unwrap();
        for _ in 0..2 {
            let (id, _) = nn.add_block(SimTime::ZERO, &path, 512, None).unwrap();
            ids.push(id);
        }
        nn.complete_file(&path).unwrap();
    }
    (nn, ids)
}

/// Everything two equivalent NameNodes must agree on.
fn replication_state(nn: &NameNode, ids: &[BlockId]) -> impl PartialEq + std::fmt::Debug {
    (
        ids.iter().map(|&id| nn.block_locations(id)).collect::<Vec<_>>(),
        nn.block_census(),
        nn.under_replicated(),
        nn.missing_blocks(),
        nn.block_manifest(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Claim 1: drive one NameNode with per-step deltas (plus a periodic
    /// full report as anti-entropy), drive its twin with nothing but one
    /// final full report per node, and the replication state converges.
    #[test]
    fn incremental_plus_periodic_full_equals_full_only(
        nodes in 3usize..7,
        files in 1usize..4,
        steps in proptest::collection::vec((0usize..7, any::<u64>()), 1..24),
    ) {
        let (mut nn_inc, ids) = seeded_namenode(nodes, files, 0);
        let (mut nn_full, _) = seeded_namenode(nodes, files, 0);

        // Ground truth: which blocks each node really holds.
        let mut held: Vec<Vec<bool>> = vec![vec![false; ids.len()]; nodes];
        let mut t = SimTime::ZERO;
        for (step, &(node_pick, bits)) in steps.iter().enumerate() {
            t += SimDuration::from_secs(1);
            let n = node_pick % nodes;
            // Flip a pseudo-random subset of the node's replicas and ship
            // the flips as one delta report.
            let mut delta = IncrementalBlockReport::default();
            for (b, &id) in ids.iter().enumerate() {
                if bits >> (b % 64) & 1 == 0 {
                    continue;
                }
                if held[n][b] {
                    held[n][b] = false;
                    delta.deleted.push(id);
                } else {
                    held[n][b] = true;
                    let meta = nn_inc.block(id).unwrap();
                    delta.received.push(ReplicaMeta {
                        id,
                        len: meta.len,
                        gen_stamp: meta.gen_stamp,
                    });
                }
            }
            nn_inc.process_incremental_report(t, node(n), &delta);
            // Periodic anti-entropy: every third step one node sends a
            // full report; it must not perturb already-correct state.
            if step % 3 == 2 {
                let full = full_report(&nn_inc, &ids, &held[n]);
                nn_inc.process_block_report(t, node(n), &full);
            }
        }

        // The full-report-only twin hears the end state once per node.
        for (n, held_by_node) in held.iter().enumerate() {
            let full = full_report(&nn_full, &ids, held_by_node);
            nn_full.process_block_report(t, node(n), &full);
        }

        prop_assert_eq!(replication_state(&nn_inc, &ids), replication_state(&nn_full, &ids));
    }
}

fn full_report(nn: &NameNode, ids: &[BlockId], held: &[bool]) -> Vec<ReplicaMeta> {
    ids.iter()
        .zip(held)
        .filter(|(_, &h)| h)
        .map(|(&id, _)| {
            let meta = nn.block(id).unwrap();
            ReplicaMeta { id, len: meta.len, gen_stamp: meta.gen_stamp }
        })
        .collect()
}

/// Claim 2: the same op sequence — touching every edit-op kind — recovers
/// identically whether restart loads a recent fsimage and replays a short
/// tail (checkpoint every 4 ops) or replays the whole journal from the
/// format image (checkpointing disabled).
#[test]
fn fsimage_plus_tail_equals_full_replay() {
    let run_ops = |nn: &mut NameNode| {
        let t = SimTime(1);
        nn.mkdirs("/a/b").unwrap();
        for f in 0..6 {
            let path = format!("/a/b/f{f}");
            nn.create_file(t, &path, Some(2), None, "writer").unwrap();
            for _ in 0..3 {
                nn.add_block(t, &path, 700, None).unwrap();
            }
            if f % 2 == 0 {
                nn.complete_file(&path).unwrap();
            }
        }
        // One of each remaining journaled op kind.
        nn.set_replication("/a/b/f0", 3).unwrap();
        nn.rename("/a/b/f2", "/a/b/renamed").unwrap();
        nn.delete("/a/b/f4", false).unwrap();
        let open_block = nn.namespace().file("/a/b/f1").unwrap().blocks[0];
        nn.bump_gen_stamp(t, "/a/b/f1", open_block).unwrap();
    };

    let (mut nn_ckpt, _) = seeded_namenode(4, 0, 4);
    let (mut nn_replay, _) = seeded_namenode(4, 0, 0);
    run_ops(&mut nn_ckpt);
    run_ops(&mut nn_replay);
    assert!(
        nn_ckpt.fsimage_bytes() != nn_replay.fsimage_bytes(),
        "the checkpointing NameNode must actually have written an image"
    );

    let t = SimTime(2);
    nn_ckpt.restart(t).unwrap();
    nn_replay.restart(t).unwrap();

    // Identical namespace, block metadata, leases, and census — however
    // much of the journey came from the image vs. the journal.
    assert_eq!(nn_ckpt.namespace(), nn_replay.namespace());
    assert_eq!(nn_ckpt.block_manifest(), nn_replay.block_manifest());
    assert_eq!(nn_ckpt.block_census(), nn_replay.block_census());
    let leases = |nn: &NameNode| {
        let mut open: Vec<String> = nn.open_files().iter().map(|l| l.path.clone()).collect();
        open.sort();
        open
    };
    assert_eq!(leases(&nn_ckpt), leases(&nn_replay));
    assert_eq!(leases(&nn_ckpt), vec!["/a/b/f1", "/a/b/f3", "/a/b/f5"]);

    // Both recover the same world once DataNodes report back in.
    let ids: Vec<BlockId> = nn_ckpt.block_manifest().iter().map(|&(id, _, _)| id).collect();
    for i in 0..4 {
        let held: Vec<bool> = ids.iter().map(|id| id.0 % 4 != i).collect();
        let report = full_report(&nn_ckpt, &ids, &held);
        nn_ckpt.register_datanode(t, node(usize::try_from(i).unwrap_or(0)), u64::MAX / 2);
        nn_replay.register_datanode(t, node(usize::try_from(i).unwrap_or(0)), u64::MAX / 2);
        nn_ckpt.process_block_report(t, node(usize::try_from(i).unwrap_or(0)), &report);
        nn_replay.process_block_report(t, node(usize::try_from(i).unwrap_or(0)), &report);
    }
    assert_eq!(replication_state(&nn_ckpt, &ids), replication_state(&nn_replay, &ids));
}
