//! Property test: lease recovery converges from any interleaving of a
//! writer crash, idle time, explicit `recoverLease` calls, and heartbeat
//! rounds — the file always closes at a consistent, whole-block prefix
//! of what the writer intended, and its bytes read back intact.

use proptest::prelude::*;

use hl_cluster::network::ClusterNet;
use hl_cluster::node::ClusterSpec;
use hl_common::config::keys;
use hl_common::prelude::*;
use hl_dfs::{Dfs, PipelineFault};

const BLOCK: u64 = 1024;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]
    #[test]
    fn lease_recovery_converges_to_a_consistent_prefix(
        after_blocks in 0u32..6,
        len in 1usize..5000,
        actions in proptest::collection::vec(0u8..3, 0..10),
    ) {
        let spec = ClusterSpec::course_hadoop(4);
        let mut config = Configuration::with_defaults();
        config.set(keys::DFS_BLOCK_SIZE, BLOCK);
        let mut dfs = Dfs::format(&config, &spec).unwrap();
        let mut net = ClusterNet::new(&spec);
        dfs.namenode.mkdirs("/d").unwrap();
        let data: Vec<u8> = (0..len).map(|i| (i % 249) as u8).collect();
        let total_blocks = len.div_ceil(BLOCK as usize) as u32;

        dfs.arm_pipeline_fault(PipelineFault::CrashWriter { after_blocks });
        let crashed = dfs.put(&mut net, SimTime::ZERO, "/d/f", &data, None).is_err();
        prop_assert_eq!(crashed, after_blocks < total_blocks);

        // Any interleaving of protocol ticks, explicit recovery, and
        // long idle stretches...
        let mut t = SimTime::ZERO;
        for a in actions {
            match a {
                0 => {
                    t += SimDuration::from_secs(30);
                    dfs.heartbeat_round(&mut net, t);
                }
                1 => {
                    let _ = dfs.namenode.recover_lease("/d/f");
                }
                _ => {
                    t += SimDuration::from_secs(400);
                    dfs.heartbeat_round(&mut net, t);
                }
            }
        }
        // ...then mere passage of time must finish the job: the hard
        // limit expires the lease and the next check finalizes the file.
        let mut rounds = 0;
        while !dfs.namenode.open_files().is_empty() {
            t += SimDuration::from_secs(30);
            dfs.heartbeat_round(&mut net, t);
            rounds += 1;
            prop_assert!(rounds < 40, "lease recovery failed to converge");
        }

        let file = dfs.namenode.namespace().file("/d/f").unwrap();
        prop_assert!(file.complete, "lease recovery must close the file");
        let expected = if crashed { u64::from(after_blocks) * BLOCK } else { len as u64 };
        prop_assert_eq!(file.len, expected, "closed at the confirmed whole-block prefix");
        let got = dfs.read(&mut net, t, "/d/f", None).unwrap();
        prop_assert_eq!(got.value.as_slice(), &data[..expected as usize]);
    }
}
