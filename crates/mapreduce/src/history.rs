//! The JobTracker's job-history page.
//!
//! Students watched the JobTracker web interface to compare runs (the
//! combiner lecture depends on it); the history page is its summary view:
//! every completed/failed job with timings, task counts, and aggregate
//! cluster statistics across the session.

use std::fmt;

use hl_common::counters::TaskCounter;
use hl_common::prelude::*;

use crate::report::JobReport;

/// A compact record of one finished job.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// `job_0001`-style id.
    pub job_id: String,
    /// Job name.
    pub name: String,
    /// Success flag.
    pub success: bool,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Elapsed time.
    pub elapsed: SimDuration,
    /// Map task count.
    pub maps: usize,
    /// Reduce task count.
    pub reduces: usize,
    /// Shuffle bytes.
    pub shuffle_bytes: u64,
    /// Map input records.
    pub input_records: u64,
}

impl HistoryEntry {
    /// Build from a full report.
    pub fn from_report(report: &JobReport) -> Self {
        HistoryEntry {
            job_id: report.job_id.clone(),
            name: report.name.clone(),
            success: report.success,
            submitted_at: report.submitted_at,
            elapsed: report.elapsed(),
            maps: report.num_maps(),
            reduces: report.num_reduces(),
            shuffle_bytes: report.shuffle_bytes(),
            input_records: report.counters.task(TaskCounter::MapInputRecords),
        }
    }
}

/// The history: append-only, bounded like Hadoop's retained-jobs setting.
#[derive(Debug, Clone)]
pub struct JobHistory {
    entries: Vec<HistoryEntry>,
    /// Maximum retained entries (oldest evicted first).
    pub retain: usize,
}

impl Default for JobHistory {
    fn default() -> Self {
        Self::new(100)
    }
}

impl JobHistory {
    /// History retaining up to `retain` jobs.
    pub fn new(retain: usize) -> Self {
        JobHistory { entries: Vec::new(), retain: retain.max(1) }
    }

    /// Record a finished job.
    pub fn record(&mut self, report: &JobReport) {
        self.entries.push(HistoryEntry::from_report(report));
        if self.entries.len() > self.retain {
            let drop = self.entries.len() - self.retain;
            self.entries.drain(..drop);
        }
    }

    /// All retained entries, oldest first.
    pub fn entries(&self) -> &[HistoryEntry] {
        &self.entries
    }

    /// Count of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Completed-successfully count.
    pub fn succeeded(&self) -> usize {
        self.entries.iter().filter(|e| e.success).count()
    }

    /// Total map+reduce tasks executed across retained jobs.
    pub fn total_tasks(&self) -> usize {
        self.entries.iter().map(|e| e.maps + e.reduces).sum()
    }

    /// Busiest job by elapsed time.
    pub fn longest(&self) -> Option<&HistoryEntry> {
        self.entries.iter().max_by_key(|e| e.elapsed)
    }
}

impl fmt::Display for JobHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Job History ({} retained, {} succeeded, {} tasks total)",
            self.len(),
            self.succeeded(),
            self.total_tasks()
        )?;
        writeln!(
            f,
            "  {:<10} {:<28} {:>9} {:>6} {:>7} {:>12} {:>12}",
            "id", "name", "state", "maps", "reduces", "elapsed", "shuffle"
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "  {:<10} {:<28} {:>9} {:>6} {:>7} {:>12} {:>12}",
                e.job_id,
                if e.name.len() > 28 { &e.name[..28] } else { &e.name },
                if e.success { "SUCCEEDED" } else { "FAILED" },
                e.maps,
                e.reduces,
                e.elapsed.to_string(),
                hl_common::units::ByteSize::display(e.shuffle_bytes).to_string(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{TaskKind, TaskSummary};
    use hl_common::counters::Counters;

    fn report(id: u32, name: &str, secs: u64) -> JobReport {
        let mut counters = Counters::new();
        counters.incr_task(TaskCounter::MapInputRecords, 100);
        counters.incr_task(TaskCounter::ReduceShuffleBytes, 2048);
        JobReport {
            job_id: format!("job_{id:04}"),
            name: name.to_string(),
            submitted_at: SimTime::ZERO,
            finished_at: SimTime(secs * 1_000_000),
            success: true,
            counters,
            tasks: vec![TaskSummary {
                id: 0,
                kind: TaskKind::Map,
                node: NodeId(0),
                start: SimTime::ZERO,
                end: SimTime(secs * 1_000_000),
                attempts: 1,
                locality: None,
                speculative: false,
            }],
            output_files: vec![],
            blacklisted_trackers: vec![],
            peak_mapper_buffer: 0,
            spec_attempts: vec![],
        }
    }

    #[test]
    fn records_and_aggregates() {
        let mut h = JobHistory::new(10);
        assert!(h.is_empty());
        h.record(&report(1, "wordcount", 10));
        h.record(&report(2, "airline", 99));
        assert_eq!(h.len(), 2);
        assert_eq!(h.succeeded(), 2);
        assert_eq!(h.total_tasks(), 2);
        assert_eq!(h.longest().unwrap().job_id, "job_0002");
        assert_eq!(h.entries()[0].input_records, 100);
        assert_eq!(h.entries()[0].shuffle_bytes, 2048);
    }

    #[test]
    fn retention_evicts_oldest() {
        let mut h = JobHistory::new(3);
        for i in 1..=5 {
            h.record(&report(i, "j", i as u64));
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.entries()[0].job_id, "job_0003");
        assert_eq!(h.entries()[2].job_id, "job_0005");
    }

    #[test]
    fn renders_table() {
        let mut h = JobHistory::new(10);
        h.record(&report(7, "wordcount+combiner", 61));
        let text = h.to_string();
        assert!(text.contains("job_0007"));
        assert!(text.contains("SUCCEEDED"));
        assert!(text.contains("1m 01s"));
        assert!(text.contains("2.0 KiB"));
    }
}
