//! Job reports — the artifact students actually read.
//!
//! The combiner lecture's observable is "increased map task run time
//! (observed through Hadoop's JobTracker's web interface) versus reduced
//! network traffic (observed through the final MapReduce job report)";
//! both renderings live here.

use std::fmt;

use hl_common::counters::{Counters, FileSystemCounter, TaskCounter};
use hl_common::prelude::*;
use hl_common::topology::Locality;
use hl_common::units::ByteSize;

use crate::speculate::{SpecAttempt, SpecOutcome};

/// Map or reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// A map task.
    Map,
    /// A reduce task.
    Reduce,
}

/// One task attempt's summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSummary {
    /// Task index within its kind.
    pub id: u32,
    /// Map or reduce.
    pub kind: TaskKind,
    /// Node the winning attempt ran on.
    pub node: NodeId,
    /// Start of the winning attempt (includes JVM startup).
    pub start: SimTime,
    /// End of the winning attempt.
    pub end: SimTime,
    /// Attempts consumed (1 = first try).
    pub attempts: u32,
    /// Input locality (maps only).
    pub locality: Option<Locality>,
    /// Whether a speculative duplicate won.
    pub speculative: bool,
}

impl TaskSummary {
    /// Wall (virtual) duration of the winning attempt.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// The full report for one job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// `job_0007`-style id.
    pub job_id: String,
    /// Job name.
    pub name: String,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Completion time.
    pub finished_at: SimTime,
    /// Whether the job succeeded.
    pub success: bool,
    /// Aggregated counters.
    pub counters: Counters,
    /// Per-task summaries (winning attempts).
    pub tasks: Vec<TaskSummary>,
    /// Output files written (part-r-NNNNN paths).
    pub output_files: Vec<String>,
    /// Trackers this job blacklisted for repeated failed attempts (they
    /// stopped receiving the job's tasks; enough such strikes across jobs
    /// blacklists a tracker cluster-wide).
    pub blacklisted_trackers: Vec<NodeId>,
    /// Largest map-side sort-buffer high-water mark across tasks (the
    /// in-mapper-combining memory metric).
    pub peak_mapper_buffer: usize,
    /// Every speculative attempt the job launched, settled: won, lost,
    /// or killed (launched = won + lost + killed by construction).
    pub spec_attempts: Vec<SpecAttempt>,
}

impl JobReport {
    /// Total job duration.
    pub fn elapsed(&self) -> SimDuration {
        self.finished_at.since(self.submitted_at)
    }

    /// Number of map tasks.
    pub fn num_maps(&self) -> usize {
        self.tasks.iter().filter(|t| t.kind == TaskKind::Map).count()
    }

    /// Number of reduce tasks.
    pub fn num_reduces(&self) -> usize {
        self.tasks.iter().filter(|t| t.kind == TaskKind::Reduce).count()
    }

    /// Count of map tasks at each locality class.
    pub fn locality_histogram(&self) -> (usize, usize, usize) {
        let mut h = (0, 0, 0);
        for t in &self.tasks {
            match t.locality {
                Some(Locality::NodeLocal) => h.0 += 1,
                Some(Locality::RackLocal) => h.1 += 1,
                Some(Locality::OffRack) => h.2 += 1,
                None => {}
            }
        }
        h
    }

    /// Sum of map-task durations (the "map time" axis of the combiner
    /// trade-off).
    pub fn total_map_time(&self) -> SimDuration {
        self.tasks
            .iter()
            .filter(|t| t.kind == TaskKind::Map)
            .map(TaskSummary::duration)
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Sum of reduce-task durations.
    pub fn total_reduce_time(&self) -> SimDuration {
        self.tasks
            .iter()
            .filter(|t| t.kind == TaskKind::Reduce)
            .map(TaskSummary::duration)
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Shuffle traffic (the other axis of the combiner trade-off).
    pub fn shuffle_bytes(&self) -> u64 {
        self.counters.task(TaskCounter::ReduceShuffleBytes)
    }

    /// Speculative attempts that beat their primary.
    pub fn spec_wins(&self) -> usize {
        self.spec_attempts.iter().filter(|a| a.outcome == SpecOutcome::Won).count()
    }

    /// Render the single-line completion banner + counters, like the tail
    /// of a `hadoop jar` run.
    pub fn final_report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{} {} {} in {}\n",
            self.job_id,
            self.name,
            if self.success { "completed successfully" } else { "FAILED" },
            self.elapsed()
        ));
        s.push_str(&self.counters.to_string());
        s
    }
}

impl fmt::Display for JobReport {
    /// The "JobTracker web UI" view: phase table, locality, per-task rows.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== JobTracker: {} ({}) ===", self.job_id, self.name)?;
        writeln!(
            f,
            "State: {}   Started: {}   Finished: {}   Elapsed: {}",
            if self.success { "SUCCEEDED" } else { "FAILED" },
            self.submitted_at,
            self.finished_at,
            self.elapsed()
        )?;
        let (dl, rl, or) = self.locality_histogram();
        writeln!(
            f,
            "Maps: {} (data-local {}, rack-local {}, off-rack {})   Reduces: {}",
            self.num_maps(),
            dl,
            rl,
            or,
            self.num_reduces()
        )?;
        writeln!(
            f,
            "Total map time: {}   Total reduce time: {}   Shuffle: {}",
            self.total_map_time(),
            self.total_reduce_time(),
            ByteSize::display(self.shuffle_bytes())
        )?;
        writeln!(
            f,
            "HDFS read: {}   HDFS written: {}   Peak map buffer: {}",
            ByteSize::display(self.counters.fs(FileSystemCounter::HdfsBytesRead)),
            ByteSize::display(self.counters.fs(FileSystemCounter::HdfsBytesWritten)),
            ByteSize::display(self.peak_mapper_buffer as u64),
        )?;
        if !self.blacklisted_trackers.is_empty() {
            let list: Vec<String> =
                self.blacklisted_trackers.iter().map(|n| n.to_string()).collect();
            writeln!(f, "Blacklisted trackers: {}", list.join(", "))?;
        }
        if !self.spec_attempts.is_empty() {
            writeln!(
                f,
                "Speculative attempts: {} launched, {} won",
                self.spec_attempts.len(),
                self.spec_wins()
            )?;
        }
        for t in &self.tasks {
            writeln!(
                f,
                "  {}_{:05} on {}  {} -> {}  ({}){}{}",
                match t.kind {
                    TaskKind::Map => "m",
                    TaskKind::Reduce => "r",
                },
                t.id,
                t.node,
                t.start,
                t.end,
                t.duration(),
                t.locality.map(|l| format!("  [{}]", l.label())).unwrap_or_default(),
                if t.attempts > 1 { format!("  attempts={}", t.attempts) } else { String::new() },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobReport {
        let mut counters = Counters::new();
        counters.incr_task(TaskCounter::ReduceShuffleBytes, 4096);
        counters.incr_fs(FileSystemCounter::HdfsBytesRead, 1 << 20);
        JobReport {
            job_id: "job_0001".into(),
            name: "wordcount".into(),
            submitted_at: SimTime::ZERO,
            finished_at: SimTime(90_000_000),
            success: true,
            counters,
            tasks: vec![
                TaskSummary {
                    id: 0,
                    kind: TaskKind::Map,
                    node: NodeId(0),
                    start: SimTime(0),
                    end: SimTime(10_000_000),
                    attempts: 1,
                    locality: Some(Locality::NodeLocal),
                    speculative: false,
                },
                TaskSummary {
                    id: 1,
                    kind: TaskKind::Map,
                    node: NodeId(1),
                    start: SimTime(0),
                    end: SimTime(30_000_000),
                    attempts: 2,
                    locality: Some(Locality::OffRack),
                    speculative: false,
                },
                TaskSummary {
                    id: 0,
                    kind: TaskKind::Reduce,
                    node: NodeId(2),
                    start: SimTime(30_000_000),
                    end: SimTime(90_000_000),
                    attempts: 1,
                    locality: None,
                    speculative: false,
                },
            ],
            output_files: vec!["/out/part-r-00000".into()],
            blacklisted_trackers: vec![],
            peak_mapper_buffer: 1024,
            spec_attempts: vec![],
        }
    }

    #[test]
    fn aggregates() {
        let r = sample();
        assert_eq!(r.elapsed(), SimDuration::from_secs(90));
        assert_eq!(r.num_maps(), 2);
        assert_eq!(r.num_reduces(), 1);
        assert_eq!(r.locality_histogram(), (1, 0, 1));
        assert_eq!(r.total_map_time(), SimDuration::from_secs(40));
        assert_eq!(r.total_reduce_time(), SimDuration::from_secs(60));
        assert_eq!(r.shuffle_bytes(), 4096);
    }

    #[test]
    fn web_ui_rendering() {
        let text = sample().to_string();
        assert!(text.contains("=== JobTracker: job_0001 (wordcount) ==="));
        assert!(text.contains("State: SUCCEEDED"));
        assert!(text.contains("data-local 1"));
        assert!(text.contains("m_00001 on node001"));
        assert!(text.contains("attempts=2"));
        assert!(text.contains("[Data-local]"));
        assert!(text.contains("Shuffle: 4.0 KiB"));
    }

    #[test]
    fn final_report_has_banner_and_counters() {
        let text = sample().final_report();
        assert!(text.starts_with("job_0001 wordcount completed successfully in 1m 30s"));
        assert!(text.contains("Reduce shuffle bytes=4096"));
    }
}
