//! The `LocalJobRunner` — assignment 1's execution mode.
//!
//! "The first assignment has the students run their final jars using only
//! serial Java commands without any HDFS support": the same mapper,
//! combiner, and reducer types run over local files, single-threaded, with
//! virtual time charged against one node's disk and CPU. An optional
//! rayon-parallel mode shows what thread-level parallelism buys *before*
//! distribution — the contrast the Version-2 redesign teaches.

use hl_common::counters::{Counters, FileSystemCounter, TaskCounter};
use hl_common::prelude::*;
use rayon::prelude::*;

use crate::api::{
    Combiner, MapContext, MapOutputSink, Mapper, ReduceContext, Reducer, SideFiles, TaskScope,
};
use crate::job::Job;
use crate::merge::merge_groups;
use crate::sortbuf::{SortBuffer, SortedRun};
use crate::split::LineReader;

/// Result of a local run.
#[derive(Debug, Clone)]
pub struct LocalReport {
    /// Output lines (`key \t value`), reduce order.
    pub output: Vec<String>,
    /// Aggregated counters.
    pub counters: Counters,
    /// Modeled (virtual) runtime on the student's machine. This is the
    /// only clock the local runner reads: timings are a pure function of
    /// the input and the cost model, so runs replay bit-identically under
    /// the simulator (invariant R2 — no wall-clock reads in sim-facing
    /// code).
    pub virtual_time: SimDuration,
}

/// The local runner: one machine, `threads` worker lanes.
#[derive(Debug, Clone)]
pub struct LocalRunner {
    /// Concurrent map lanes (1 = the serial assignment-1 mode).
    pub threads: usize,
    /// Disk bandwidth of the local machine, bytes/s.
    pub disk_bw: u64,
    /// Split size for carving local inputs into map tasks.
    pub split_bytes: usize,
}

impl Default for LocalRunner {
    fn default() -> Self {
        Self::serial()
    }
}

impl LocalRunner {
    /// Single-threaded, laptop-class disk (~100 MiB/s), 8 MiB splits.
    pub fn serial() -> Self {
        LocalRunner { threads: 1, disk_bw: 100 * 1024 * 1024, split_bytes: 8 * 1024 * 1024 }
    }

    /// `threads`-way parallel local runner.
    pub fn parallel(threads: usize) -> Self {
        LocalRunner { threads: threads.max(1), ..Self::serial() }
    }

    /// Run `job` over in-memory input files `(name, bytes)`. All user code
    /// executes for real; `virtual_time` models the same work on one
    /// 2013-era machine.
    pub fn run<M, R, C>(
        &self,
        job: &Job<M, R, C>,
        inputs: &[(String, Vec<u8>)],
        side: &SideFiles,
    ) -> Result<LocalReport>
    where
        M: Mapper,
        R: Reducer<KIn = M::KOut, VIn = M::VOut>,
        C: Combiner<K = M::KOut, V = M::VOut>,
        M::KOut: Send,
        M::VOut: Send,
    {
        let num_reduces = job.conf.num_reduces;

        // Carve inputs into splits.
        struct LocalSplit<'a> {
            data: &'a [u8],
            offset: usize,
            len: usize,
            prev_byte: Option<u8>,
        }
        let mut splits = Vec::new();
        for (_, bytes) in inputs {
            let mut off = 0;
            while off < bytes.len() {
                let len = self.split_bytes.min(bytes.len() - off);
                splits.push(LocalSplit {
                    data: &bytes[off..],
                    offset: off,
                    len,
                    prev_byte: if off == 0 { None } else { Some(bytes[off - 1]) },
                });
                off += len;
            }
        }

        // Map phase (really parallel when threads > 1).
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .build()
            .map_err(|e| HlError::Internal(format!("rayon pool: {e}")))?;
        let map_results: Vec<Result<MapTaskResult<M::KOut>>> = pool.install(|| {
            splits
                .par_iter()
                .map(|split| {
                    let mut scope = TaskScope::new(side.clone(), self.disk_bw);
                    // Register always-reported counters up front so the job
                    // report shows the group even for empty map output.
                    let mut task_counters = Counters::new();
                    task_counters.touch_task(TaskCounter::MapOutputBytes);
                    let mut sink = LocalSink {
                        buf: SortBuffer::new(num_reduces, job.conf.sort_buffer_bytes)
                            .with_partitioner(job.partitioner.clone()),
                        combiner: job.combiner.as_ref().map(|f| f()),
                        counters: task_counters,
                    };
                    let mut mapper = (job.mapper)();
                    let mut records = 0u64;
                    {
                        let mut ctx = MapContext::new(&mut scope, &mut sink);
                        mapper.setup(&mut ctx);
                        for (off, line) in LineReader::new(
                            split.prev_byte,
                            split.data,
                            split.len,
                            split.offset as u64,
                        ) {
                            records += 1;
                            mapper.map(off, &line, &mut ctx);
                        }
                        mapper.cleanup(&mut ctx);
                    }
                    let mut counters = sink.counters;
                    let output = {
                        let mut c = sink.combiner;
                        sink.buf.finish(c.as_mut(), &mut counters)
                    };
                    counters.merge(&scope.counters);
                    counters.incr_task(TaskCounter::MapInputRecords, records);
                    counters.incr_task(TaskCounter::MapOutputBytes, output.total_bytes());
                    counters.incr_fs(FileSystemCounter::FileBytesRead, split.len as u64);

                    // Virtual cost: disk read + declared CPU + explicit charges.
                    let vt = SimDuration::for_transfer(split.len as u64, self.disk_bw)
                        + job.conf.map_cpu_per_byte * split.len as u64
                        + job.conf.map_cpu_per_record * records
                        + scope.extra_time;
                    Ok(MapTaskResult::new(output, counters, vt))
                })
                .collect()
        });

        let mut counters = Counters::new();
        let mut map_outputs: Vec<crate::sortbuf::MapOutput> = Vec::with_capacity(map_results.len());
        let mut map_times = Vec::with_capacity(map_results.len());
        for r in map_results {
            let r = r?;
            counters.merge(&r.counters);
            map_times.push(r.virtual_time);
            map_outputs.push(r.output);
        }
        // Greedy lane scheduling: virtual map phase time with `threads` lanes.
        let map_virtual = schedule_lanes(&map_times, self.threads);

        // Reduce phase — runs on the same rayon pool as the map phase.
        // Each partition is consumed exactly once (the local runner has no
        // task retries), so move the runs out instead of cloning; deliver
        // output in partition order regardless of completion order.
        let runs_by_reduce: Vec<Vec<SortedRun>> = (0..num_reduces)
            .map(|r| map_outputs.iter_mut().map(|o| o.take_partition(r)).collect())
            .collect();
        let reduce_results: Vec<Result<(Vec<String>, Counters, SimDuration)>> =
            pool.install(|| {
                runs_by_reduce
                    .into_par_iter()
                    .map(|runs| {
                        let mut task_counters = Counters::new();
                        let mut scope = TaskScope::new(side.clone(), self.disk_bw);
                        let mut lines = Vec::new();
                        let mut reducer = (job.reducer)();
                        let mut records = 0u64;
                        let mut groups = 0u64;
                        {
                            let mut ctx = ReduceContext::new(&mut scope, &mut lines);
                            reducer.setup(&mut ctx);
                            for (kbytes, vlist) in merge_groups(&runs) {
                                groups += 1;
                                let mut ks = kbytes;
                                let key =
                                    <M::KOut as hl_common::keys::SortableKey>::decode_ordered(
                                        &mut ks,
                                    )?;
                                let values: Result<Vec<M::VOut>> = vlist
                                    .iter()
                                    .map(|b| {
                                        <M::VOut as hl_common::writable::Writable>::from_bytes(b)
                                    })
                                    .collect();
                                let values = values?;
                                records += values.len() as u64;
                                reducer.reduce(key, values, &mut ctx);
                            }
                            reducer.cleanup(&mut ctx);
                        }
                        task_counters.incr_task(TaskCounter::ReduceInputGroups, groups);
                        task_counters.merge(&scope.counters);
                        task_counters.incr_task(TaskCounter::ReduceInputRecords, records);
                        let vt = job.conf.reduce_cpu_per_record * records + scope.extra_time;
                        Ok((lines, task_counters, vt))
                    })
                    .collect()
            });
        let mut output = Vec::new();
        let mut reduce_times = Vec::with_capacity(num_reduces);
        for res in reduce_results {
            let (lines, c, vt) = res?;
            counters.merge(&c);
            reduce_times.push(vt);
            output.extend(lines);
        }
        let reduce_virtual = schedule_lanes(&reduce_times, self.threads);

        Ok(LocalReport { output, counters, virtual_time: map_virtual + reduce_virtual })
    }
}

struct MapTaskResult<K> {
    output: crate::sortbuf::MapOutput,
    counters: Counters,
    virtual_time: SimDuration,
    // K appears in MapOutput only as serialized bytes; keep the type tied.
    _marker: std::marker::PhantomData<fn() -> K>,
}

impl<K> MapTaskResult<K> {
    fn new(
        output: crate::sortbuf::MapOutput,
        counters: Counters,
        virtual_time: SimDuration,
    ) -> Self {
        MapTaskResult { output, counters, virtual_time, _marker: std::marker::PhantomData }
    }
}

struct LocalSink<
    K: hl_common::keys::SortableKey,
    V: hl_common::writable::Writable,
    C: Combiner<K = K, V = V>,
> {
    buf: SortBuffer<K, V>,
    combiner: Option<C>,
    counters: Counters,
}

impl<
        K: hl_common::keys::SortableKey,
        V: hl_common::writable::Writable,
        C: Combiner<K = K, V = V>,
    > MapOutputSink<K, V> for LocalSink<K, V, C>
{
    fn collect(&mut self, key: K, value: V) {
        self.buf.collect(&key, &value, self.combiner.as_mut(), &mut self.counters);
    }
}

/// Longest-processing-time-first greedy schedule of task durations onto
/// `lanes` parallel lanes; returns the makespan. The least-loaded lane is
/// tracked in a min-heap, so scheduling is O(n log lanes) instead of the
/// O(n · lanes) linear scan.
pub fn schedule_lanes(durations: &[SimDuration], lanes: usize) -> SimDuration {
    let lanes = lanes.max(1);
    let mut sorted: Vec<SimDuration> = durations.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut lane_loads: std::collections::BinaryHeap<std::cmp::Reverse<SimDuration>> =
        (0..lanes).map(|_| std::cmp::Reverse(SimDuration::ZERO)).collect();
    for d in sorted {
        let std::cmp::Reverse(load) = lane_loads.pop().unwrap();
        lane_loads.push(std::cmp::Reverse(load + d));
    }
    lane_loads.into_iter().map(|std::cmp::Reverse(d)| d).max().unwrap_or(SimDuration::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobConf;

    struct WcMap;
    impl Mapper for WcMap {
        type KOut = String;
        type VOut = u64;
        fn map(&mut self, _o: u64, line: &str, ctx: &mut MapContext<String, u64>) {
            for w in line.split_whitespace() {
                ctx.emit(w.to_string(), 1);
            }
        }
    }
    struct WcReduce;
    impl Reducer for WcReduce {
        type KIn = String;
        type VIn = u64;
        fn reduce(&mut self, key: String, values: Vec<u64>, ctx: &mut ReduceContext) {
            ctx.emit(key, values.into_iter().sum::<u64>());
        }
    }

    fn text(words: usize) -> String {
        let vocab = ["alpha", "beta", "gamma"];
        let mut s = String::new();
        for i in 0..words {
            s.push_str(vocab[i % 3]);
            s.push(if i % 7 == 6 { '\n' } else { ' ' });
        }
        s
    }

    fn conf() -> JobConf {
        JobConf::new("wc-local").input("ignored").output("ignored-out")
    }

    #[test]
    fn serial_run_counts_words() {
        let data = text(3000);
        let job = Job::new(conf(), || WcMap, || WcReduce);
        let report = LocalRunner::serial()
            .run(&job, &[("in.txt".into(), data.clone().into_bytes())], &SideFiles::new())
            .unwrap();
        let mut counts = std::collections::BTreeMap::new();
        for line in &report.output {
            let (k, v) = line.split_once('\t').unwrap();
            counts.insert(k.to_string(), v.parse::<u64>().unwrap());
        }
        assert_eq!(counts["alpha"], 1000);
        assert_eq!(counts["beta"], 1000);
        assert_eq!(counts["gamma"], 1000);
        assert!(report.virtual_time > SimDuration::ZERO);
    }

    #[test]
    fn parallel_matches_serial_output_and_is_virtually_faster() {
        let data = text(20_000);
        let job = Job::new(conf(), || WcMap, || WcReduce);
        let mut runner = LocalRunner::serial();
        runner.split_bytes = 8 * 1024; // force many map tasks
        let serial = runner
            .run(&job, &[("in.txt".into(), data.clone().into_bytes())], &SideFiles::new())
            .unwrap();
        let mut prunner = LocalRunner::parallel(8);
        prunner.split_bytes = 8 * 1024;
        let parallel =
            prunner.run(&job, &[("in.txt".into(), data.into_bytes())], &SideFiles::new()).unwrap();
        let mut a = serial.output.clone();
        let mut b = parallel.output.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(parallel.virtual_time < serial.virtual_time);
    }

    #[test]
    fn multiple_input_files() {
        let job = Job::new(conf(), || WcMap, || WcReduce);
        let report = LocalRunner::serial()
            .run(
                &job,
                &[("a.txt".into(), b"x y\n".to_vec()), ("b.txt".into(), b"y z\n".to_vec())],
                &SideFiles::new(),
            )
            .unwrap();
        let mut sorted = report.output.clone();
        sorted.sort();
        assert_eq!(sorted, vec!["x\t1", "y\t2", "z\t1"]);
        assert_eq!(report.counters.task(TaskCounter::MapInputRecords), 2);
    }

    #[test]
    fn empty_input_runs_cleanly() {
        let job = Job::new(conf(), || WcMap, || WcReduce);
        let report = LocalRunner::serial().run(&job, &[], &SideFiles::new()).unwrap();
        assert!(report.output.is_empty());
    }

    #[test]
    fn schedule_lanes_makespan() {
        let d = |s| SimDuration::from_secs(s);
        assert_eq!(schedule_lanes(&[d(4), d(2), d(2)], 1), d(8));
        assert_eq!(schedule_lanes(&[d(4), d(2), d(2)], 2), d(4));
        assert_eq!(schedule_lanes(&[], 4), SimDuration::ZERO);
        // LPT: 5,4,3,3,3 on 2 lanes -> lanes {5,3} {4,3,3} = 10 ... LPT gives
        // 5+3=8 / 4+3+3=10 -> makespan 9? compute: sorted 5,4,3,3,3;
        // lane1=5, lane2=4, lane2? min is lane2(4)->+3=7, lane1(5)->+3=8,
        // lane2(7)->+3=10 => makespan 10.
        assert_eq!(schedule_lanes(&[d(5), d(4), d(3), d(3), d(3)], 2), d(10));
    }
}
