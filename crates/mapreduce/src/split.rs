//! Input splits: one map task per HDFS block, with replica locations.
//!
//! This is the HDFS–MapReduce integration arrow in Figure 2: "JobTracker
//! provides NameNode with file/directory paths and receives block-level
//! information", which it then uses to place map tasks near their data.
//!
//! [`LineReader`] reproduces Hadoop's `LineRecordReader` semantics exactly:
//! a record belongs to the split where it **starts**; a non-first split
//! discards bytes through the first newline (unless the byte before the
//! split was itself a newline), and the last record of a split is read
//! *past* the split boundary to its terminating newline.

use hl_common::prelude::*;
use hl_dfs::client::Dfs;
use hl_dfs::BlockId;

/// One map task's input: a block of a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSplit {
    /// Source file.
    pub path: String,
    /// The block backing this split.
    pub block: BlockId,
    /// Byte offset of the split within the file.
    pub offset: u64,
    /// Split length in bytes.
    pub len: u64,
    /// Nodes holding a replica (locality hints).
    pub holders: Vec<NodeId>,
}

/// Compute splits for a job's input paths. Directories expand to the
/// files directly beneath them (like `FileInputFormat` with a glob-free
/// directory input). Empty files yield no splits.
pub fn compute_splits(dfs: &Dfs, input_paths: &[String]) -> Result<Vec<InputSplit>> {
    let mut splits = Vec::new();
    for path in input_paths {
        let files: Vec<String> = if dfs.namenode.namespace().is_dir(path) {
            dfs.namenode.list(path)?.into_iter().filter(|s| !s.is_dir).map(|s| s.path).collect()
        } else {
            vec![path.clone()]
        };
        for file in files {
            let mut offset = 0;
            for (block, len, holders) in dfs.file_blocks(&file)? {
                splits.push(InputSplit { path: file.clone(), block, offset, len, holders });
                offset += len;
            }
        }
    }
    Ok(splits)
}

/// Line iterator over one split, Hadoop `LineRecordReader` semantics.
///
/// `data` must start at the split's first byte and extend far enough past
/// the split for its final record to terminate (the engine appends
/// following blocks until a newline or EOF appears beyond the boundary).
pub struct LineReader<'a> {
    data: &'a [u8],
    split_len: usize,
    pos: usize,
    offset: u64,
}

impl<'a> LineReader<'a> {
    /// Build a reader.
    ///
    /// * `prev_byte` — the file byte immediately before this split
    ///   (`None` for the first split). A non-newline `prev_byte` means the
    ///   split's leading bytes belong to the previous split's last record
    ///   and are skipped.
    /// * `data` — bytes from the split start, extending beyond `split_len`
    ///   as far as available.
    /// * `split_len` — the split's own length; records *starting* before
    ///   this boundary are emitted.
    /// * `offset` — the split's byte offset in the file (for record keys).
    pub fn new(prev_byte: Option<u8>, data: &'a [u8], split_len: usize, offset: u64) -> Self {
        let mut reader = LineReader { data, split_len: split_len.min(data.len()), pos: 0, offset };
        if let Some(b) = prev_byte {
            if b != b'\n' {
                // Skip the tail of the previous split's last record.
                match data.iter().position(|&x| x == b'\n') {
                    Some(i) => reader.pos = i + 1,
                    None => reader.pos = data.len(), // nothing starts here
                }
            }
        }
        reader
    }
}

impl<'a> Iterator for LineReader<'a> {
    type Item = (u64, String);

    fn next(&mut self) -> Option<(u64, String)> {
        if self.pos >= self.split_len {
            return None;
        }
        let start = self.pos;
        let line_end = match self.data[start..].iter().position(|&b| b == b'\n') {
            Some(i) => {
                self.pos = start + i + 1;
                start + i
            }
            None => {
                self.pos = self.data.len();
                self.data.len()
            }
        };
        let mut line = &self.data[start..line_end];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        if line.is_empty() && line_end == self.data.len() && start == line_end {
            return None; // trailing EOF with no content
        }
        Some((self.offset + start as u64, String::from_utf8_lossy(line).into_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Read a file through block-aligned splits and check the lines match a
    /// straight `str::lines` pass, for every block size.
    fn check_split_reading(text: &str, block_size: usize) {
        let bytes = text.as_bytes();
        let nblocks = bytes.len().div_ceil(block_size);
        let mut lines = Vec::new();
        for i in 0..nblocks {
            let start = i * block_size;
            let split_len = block_size.min(bytes.len() - start);
            let prev_byte = if i == 0 { None } else { Some(bytes[start - 1]) };
            let reader = LineReader::new(prev_byte, &bytes[start..], split_len, start as u64);
            lines.extend(reader.map(|(_, l)| l));
        }
        let expected: Vec<String> = text.lines().map(str::to_string).collect();
        assert_eq!(lines, expected, "block_size={block_size} text={text:?}");
    }

    #[test]
    fn lines_survive_any_block_cut() {
        let text = "the quick brown fox\njumps over\nthe lazy dog\nand sleeps\n";
        for bs in 1..=text.len() + 1 {
            check_split_reading(text, bs);
        }
    }

    #[test]
    fn lines_longer_than_blocks_are_not_lost() {
        let text = "tiny\nan-extremely-long-line-spanning-many-small-blocks\nend\n";
        for bs in 1..=8 {
            check_split_reading(text, bs);
        }
    }

    #[test]
    fn no_trailing_newline() {
        let text = "alpha\nbeta\ngamma";
        for bs in 1..=text.len() + 1 {
            check_split_reading(text, bs);
        }
    }

    #[test]
    fn empty_and_blank_lines() {
        check_split_reading("", 4);
        let text = "\n\na\n\nb\n";
        for bs in 1..=text.len() + 1 {
            check_split_reading(text, bs);
        }
    }

    #[test]
    fn crlf_lines_lose_their_cr() {
        let text = "a\r\nbb\r\n";
        let reader = LineReader::new(None, text.as_bytes(), text.len(), 0);
        let lines: Vec<String> = reader.map(|(_, l)| l).collect();
        assert_eq!(lines, vec!["a", "bb"]);
    }

    #[test]
    fn offsets_point_at_line_starts() {
        let text = "aa\nbbb\ncc\n";
        let reader = LineReader::new(None, text.as_bytes(), text.len(), 0);
        let offsets: Vec<u64> = reader.map(|(o, _)| o).collect();
        assert_eq!(offsets, vec![0, 3, 7]);
    }

    #[test]
    fn boundary_exactly_on_newline_keeps_next_line() {
        // "ab\ncd\n" split at 3: split 2 starts right after a newline, so
        // "cd" belongs to split 2 and must not be skipped.
        let bytes = b"ab\ncd\n";
        let r2 = LineReader::new(Some(b'\n'), &bytes[3..], 3, 3);
        let lines: Vec<String> = r2.map(|(_, l)| l).collect();
        assert_eq!(lines, vec!["cd"]);
    }

    proptest::proptest! {
        #[test]
        fn prop_lines_survive_random_cuts(
            text in proptest::collection::vec("[a-z]{0,12}", 0..40),
            bs in 1usize..64,
        ) {
            let joined = text.join("\n");
            check_split_reading(&joined, bs);
        }

        #[test]
        fn prop_offsets_are_strictly_increasing(bs in 1usize..16) {
            let text = "one\ntwo\nthree\nfour five six\nseven\n";
            let bytes = text.as_bytes();
            let mut offs = Vec::new();
            for i in 0..bytes.len().div_ceil(bs) {
                let start = i * bs;
                let prev = if i == 0 { None } else { Some(bytes[start - 1]) };
                let split_len = bs.min(bytes.len() - start);
                offs.extend(
                    LineReader::new(prev, &bytes[start..], split_len, start as u64)
                        .map(|(o, _)| o),
                );
            }
            proptest::prop_assert!(offs.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
