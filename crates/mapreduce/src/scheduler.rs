//! Pluggable JobTracker scheduling: the `Scheduler` trait and its three
//! policies.
//!
//! Hadoop 1.x started with a hardcoded FIFO JobTracker and grew pluggable
//! `TaskScheduler` classes once shared clusters made single-tenant
//! scheduling untenable — the Fair Scheduler (Facebook) and the Capacity
//! Scheduler (Yahoo). This module retraces that evolution: the engine's
//! task-assignment decisions route through the [`Scheduler`] trait on an
//! assign-on-heartbeat model — given the current slot states and the
//! runnable job set, return one deterministic assignment at a time, plus
//! optional preemptions.
//!
//! * [`FifoScheduler`] — the pre-trait engine behavior, bit for bit:
//!   earliest-free slot, jobs in priority/submission order, best-locality
//!   task first;
//! * [`FairScheduler`] — per-pool weighted deficit sharing with per-user
//!   tie-breaking inside a pool and minimum-share preemption after a
//!   configurable virtual-time timeout;
//! * [`CapacityScheduler`] — hierarchical queues with guaranteed
//!   capacity, elastic overflow up to a maximum, and per-user limits.
//!
//! Every decision is a pure function of the arguments and the scheduler's
//! own (deterministically evolved) state: no wall clocks, no hash maps,
//! no randomness — the chaos soak hashes whole traces across re-runs.

use std::collections::BTreeMap;

use hl_common::config::keys;
use hl_common::prelude::*;

/// One TaskTracker slot as the scheduler sees it: where it is and when it
/// frees up. The engine hands the scheduler *all* slots of the relevant
/// kind; `free_at` in the future means the slot is busy until then.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotState {
    /// Node hosting the slot.
    pub node: NodeId,
    /// Virtual time at which the slot is (or becomes) free.
    pub free_at: SimTime,
}

/// One runnable job as the scheduler sees it. Borrowed views keep the
/// trait object-safe and the engine's ownership untouched.
#[derive(Debug, Clone, Copy)]
pub struct JobView<'a> {
    /// Submitting user.
    pub user: &'a str,
    /// Fair-scheduler pool / Capacity queue.
    pub pool: &'a str,
    /// Larger runs earlier within a policy's tie-breaks.
    pub priority: u32,
    /// Submission time (FIFO order).
    pub submitted_at: SimTime,
    /// Task ids still waiting for a slot (any order; policies must not
    /// depend on it).
    pub pending: &'a [u32],
    /// Task ids currently running (preemption candidates).
    pub running: &'a [u32],
}

/// One task placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Index into the `slots` slice passed to [`Scheduler::next_assignment`].
    pub slot: usize,
    /// Index into the `jobs` slice.
    pub job: usize,
    /// Task id from that job's `pending` list.
    pub task: u32,
}

/// One preemption decision: stop this running task and re-queue it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Preemption {
    /// Index into the `jobs` slice.
    pub job: usize,
    /// Task id from that job's `running` list.
    pub task: u32,
}

/// What the scheduler may ask the engine about placement quality.
pub trait SchedulerEnv {
    /// Locality distance of running `jobs[job]`'s task `task` on `node`
    /// (0 = node-local, larger = worse, `u32::MAX` = unknown). Policies
    /// prefer smaller distances; an env may return 0 everywhere to make
    /// placement locality-blind.
    fn distance(&self, node: NodeId, job: usize, task: u32) -> u32;
}

/// A locality-blind environment: every placement is equally good.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformEnv;

impl SchedulerEnv for UniformEnv {
    fn distance(&self, _node: NodeId, _job: usize, _task: u32) -> u32 {
        0
    }
}

/// A task-assignment policy. Implementations must be deterministic: the
/// same call sequence yields the same decisions, byte for byte.
pub trait Scheduler: Send {
    /// Policy name (config value / trace label).
    fn name(&self) -> &'static str;

    /// The next single assignment, or `None` when no runnable work fits
    /// the current slots. The engine applies the assignment (the task
    /// leaves `pending`, the slot's `free_at` advances) and calls again —
    /// the assign-on-heartbeat loop.
    fn next_assignment(
        &mut self,
        now: SimTime,
        slots: &[SlotState],
        jobs: &[JobView<'_>],
        env: &dyn SchedulerEnv,
    ) -> Option<Assignment>;

    /// Tasks to preempt before this round's assignments. Default: none
    /// (FIFO and Capacity never preempt; Hadoop 1.x Capacity didn't
    /// either).
    fn preemptions(
        &mut self,
        now: SimTime,
        total_slots: usize,
        jobs: &[JobView<'_>],
    ) -> Vec<Preemption> {
        let _ = (now, total_slots, jobs);
        Vec::new()
    }
}

/// Earliest-free slot: min over `(free_at, node id, index)` — exactly the
/// engine's historical `min_by_key` (which kept the first minimum).
fn pick_slot(slots: &[SlotState]) -> Option<usize> {
    (0..slots.len()).min_by_key(|&i| (slots[i].free_at, slots[i].node.0, i))
}

/// Best task of one job for one node: min over `(distance, task id)` —
/// the engine's historical locality-first, then-order pick.
fn pick_task(job: usize, view: &JobView<'_>, node: NodeId, env: &dyn SchedulerEnv) -> Option<u32> {
    view.pending.iter().copied().min_by_key(|&t| (env.distance(node, job, t), t))
}

/// Strict-FIFO job order: priority (descending), then submission time,
/// then submission index.
fn fifo_rank(jobs: &[JobView<'_>]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&j| (std::cmp::Reverse(jobs[j].priority), jobs[j].submitted_at, j));
    order
}

// --------------------------------------------------------------- FIFO

/// The original JobTracker policy, extracted verbatim: earliest-free
/// slot, first job (priority, then submission order) with pending work,
/// best-locality task.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn next_assignment(
        &mut self,
        _now: SimTime,
        slots: &[SlotState],
        jobs: &[JobView<'_>],
        env: &dyn SchedulerEnv,
    ) -> Option<Assignment> {
        let slot = pick_slot(slots)?;
        let node = slots[slot].node;
        for j in fifo_rank(jobs) {
            if let Some(task) = pick_task(j, &jobs[j], node, env) {
                return Some(Assignment { slot, job: j, task });
            }
        }
        None
    }
}

// --------------------------------------------------------------- Fair

/// One pool's configured share.
#[derive(Debug, Clone, Copy)]
pub struct PoolSpec {
    /// Weight in the deficit comparison (≥ 1).
    pub weight: u64,
    /// Slots this pool is guaranteed; sitting below this with demand for
    /// longer than the preemption timeout triggers preemption.
    pub min_share: u64,
}

impl Default for PoolSpec {
    fn default() -> Self {
        PoolSpec { weight: 1, min_share: 0 }
    }
}

/// Per-user/pool weighted deficit sharing, after Hadoop's Fair Scheduler:
/// pools below their minimum share go first, then pools by smallest
/// `running/weight` ratio; inside a pool the user with the fewest running
/// tasks wins, FIFO within a user. A pool starved of its minimum share
/// past the timeout preempts the newest tasks of the most over-share
/// pools.
#[derive(Debug, Clone)]
pub struct FairScheduler {
    pools: BTreeMap<String, PoolSpec>,
    preemption_timeout: SimDuration,
    /// Pool → when it was first observed below min-share with demand.
    starved_since: BTreeMap<String, SimTime>,
}

#[derive(Debug, Default)]
struct PoolStat {
    running: u64,
    pending: u64,
    weight: u64,
    min_share: u64,
}

impl FairScheduler {
    /// A fair scheduler with no configured pools (every pool defaults to
    /// weight 1, min share 0) and the given preemption timeout.
    pub fn new(preemption_timeout: SimDuration) -> Self {
        FairScheduler { pools: BTreeMap::new(), preemption_timeout, starved_since: BTreeMap::new() }
    }

    /// Configure one pool's weight and minimum share.
    pub fn pool(mut self, name: impl Into<String>, weight: u64, min_share: u64) -> Self {
        self.pools.insert(name.into(), PoolSpec { weight: weight.max(1), min_share });
        self
    }

    fn spec(&self, pool: &str) -> PoolSpec {
        self.pools.get(pool).copied().unwrap_or_default()
    }

    fn pool_stats(&self, jobs: &[JobView<'_>]) -> BTreeMap<String, PoolStat> {
        let mut stats: BTreeMap<String, PoolStat> = BTreeMap::new();
        for v in jobs {
            let s = stats.entry(v.pool.to_string()).or_default();
            s.running += v.running.len() as u64;
            s.pending += v.pending.len() as u64;
        }
        for (name, s) in stats.iter_mut() {
            let spec = self.spec(name);
            s.weight = spec.weight;
            s.min_share = spec.min_share;
        }
        stats
    }

    /// Deficit order between two pools, as a total order: needy pools
    /// (below min share) first by smallest `running/min_share`, then
    /// everyone by smallest `running/weight`; names break exact ties.
    /// Integer cross-multiplication keeps the comparison exact.
    fn pool_order(a: (&str, &PoolStat), b: (&str, &PoolStat)) -> std::cmp::Ordering {
        let needy = |s: &PoolStat| s.running < s.min_share;
        let (an, bn) = (needy(a.1), needy(b.1));
        match (an, bn) {
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (true, true) => {
                (a.1.running * b.1.min_share).cmp(&(b.1.running * a.1.min_share)).then(a.0.cmp(b.0))
            }
            (false, false) => {
                (a.1.running * b.1.weight).cmp(&(b.1.running * a.1.weight)).then(a.0.cmp(b.0))
            }
        }
    }
}

impl Scheduler for FairScheduler {
    fn name(&self) -> &'static str {
        "fair"
    }

    fn next_assignment(
        &mut self,
        _now: SimTime,
        slots: &[SlotState],
        jobs: &[JobView<'_>],
        env: &dyn SchedulerEnv,
    ) -> Option<Assignment> {
        let slot = pick_slot(slots)?;
        let node = slots[slot].node;
        let stats = self.pool_stats(jobs);
        let mut pools: Vec<(&str, &PoolStat)> =
            stats.iter().map(|(n, s)| (n.as_str(), s)).filter(|(_, s)| s.pending > 0).collect();
        pools.sort_by(|a, b| Self::pool_order(*a, *b));
        // Running tasks per (pool, user): the fair share inside a pool.
        let mut user_running: BTreeMap<(&str, &str), u64> = BTreeMap::new();
        for v in jobs {
            *user_running.entry((v.pool, v.user)).or_default() += v.running.len() as u64;
        }
        let rank = fifo_rank(jobs);
        for (pool, _) in pools {
            // Least-loaded user in the pool first; FIFO within a user.
            let candidate = rank
                .iter()
                .copied()
                .filter(|&j| jobs[j].pool == pool && !jobs[j].pending.is_empty())
                .min_by_key(|&j| {
                    (
                        user_running.get(&(pool, jobs[j].user)).copied().unwrap_or(0),
                        rank_pos(&rank, j),
                    )
                });
            if let Some(j) = candidate {
                if let Some(task) = pick_task(j, &jobs[j], node, env) {
                    return Some(Assignment { slot, job: j, task });
                }
            }
        }
        None
    }

    fn preemptions(
        &mut self,
        now: SimTime,
        _total_slots: usize,
        jobs: &[JobView<'_>],
    ) -> Vec<Preemption> {
        let stats = self.pool_stats(jobs);
        // Update starvation clocks: a pool is starved while it has demand
        // and runs below min(min_share, deserved = running + pending).
        let mut deficits: BTreeMap<String, u64> = BTreeMap::new();
        for (name, s) in &stats {
            let target = s.min_share.min(s.running + s.pending);
            if s.pending > 0 && s.running < target {
                self.starved_since.entry(name.clone()).or_insert(now);
                deficits.insert(name.clone(), target - s.running);
            } else {
                self.starved_since.remove(name);
            }
        }
        self.starved_since.retain(|name, _| stats.contains_key(name));
        let mut out = Vec::new();
        // Victim pools: over min-share, largest running/weight ratio first.
        let mut victims: Vec<(&str, u64)> = stats
            .iter()
            .filter(|(name, s)| s.running > s.min_share && !deficits.contains_key(name.as_str()))
            .map(|(name, s)| (name.as_str(), s.running))
            .collect();
        victims.sort_by(|a, b| {
            let (sa, sb) = (&stats[a.0], &stats[b.0]);
            (sb.running * sa.weight).cmp(&(sa.running * sb.weight)).then(a.0.cmp(b.0))
        });
        let timeout = self.preemption_timeout;
        let expired: Vec<String> = self
            .starved_since
            .iter()
            .filter(|(_, &since)| now.since(since) >= timeout)
            .map(|(n, _)| n.clone())
            .collect();
        let mut victim_running: BTreeMap<&str, u64> =
            victims.iter().map(|&(n, r)| (n, r)).collect();
        for pool in expired {
            let mut need = deficits.get(&pool).copied().unwrap_or(0);
            for &(vpool, _) in &victims {
                while need > 0 {
                    let running = victim_running.get(vpool).copied().unwrap_or(0);
                    if running <= stats[vpool].min_share {
                        break;
                    }
                    // Newest task of the victim pool's busiest job: most
                    // still-running tasks (net of preemptions already
                    // chosen this round), then latest submission, then
                    // highest index; within the job, the highest task id.
                    let left = |j: usize| {
                        let chosen = &out;
                        jobs[j]
                            .running
                            .iter()
                            .copied()
                            .filter(move |&t| !chosen.contains(&Preemption { job: j, task: t }))
                    };
                    let victim_job = (0..jobs.len())
                        .filter(|&j| jobs[j].pool == vpool && left(j).next().is_some())
                        .max_by_key(|&j| (left(j).count(), jobs[j].submitted_at, j));
                    let Some(j) = victim_job else { break };
                    let Some(task) = left(j).max() else { break };
                    out.push(Preemption { job: j, task });
                    victim_running.insert(vpool, running - 1);
                    need -= 1;
                }
            }
            // Restart the clock: the freed slots reach the starved pool on
            // the very next assignment round, and a pool still starved
            // after that earns another timeout period, not a free repeat.
            self.starved_since.insert(pool, now);
        }
        out
    }
}

/// Position of `j` in `rank` (total order; `j` always present).
fn rank_pos(rank: &[usize], j: usize) -> usize {
    rank.iter().position(|&r| r == j).unwrap_or(usize::MAX)
}

// ----------------------------------------------------------- Capacity

/// One queue's configured capacity.
#[derive(Debug, Clone, Default)]
pub struct QueueSpec {
    /// Guaranteed share, in percent of the parent's capacity (of the
    /// whole cluster for root queues).
    pub capacity_pct: u64,
    /// Elastic ceiling, in percent of the parent's capacity.
    pub max_capacity_pct: u64,
    /// One user's ceiling inside this queue, in percent of the queue's
    /// maximum slots.
    pub user_limit_pct: u64,
    /// Parent queue (hierarchical capacity), or none for a root queue.
    pub parent: Option<String>,
}

/// Hierarchical guaranteed-capacity queues, after Hadoop's Capacity
/// Scheduler: each queue owns a percentage of its parent's slots, may
/// elastically overflow to `max_capacity_pct` when the cluster has idle
/// slots, and caps any single user at `user_limit_pct` of the queue.
/// Queues are served by smallest used-capacity ratio; FIFO within a
/// queue. No preemption — elastic overflow drains by attrition.
#[derive(Debug, Clone)]
pub struct CapacityScheduler {
    queues: BTreeMap<String, QueueSpec>,
}

impl Default for CapacityScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl CapacityScheduler {
    /// A capacity scheduler with only the catch-all `default` queue
    /// (100% capacity, 100% max, no user limit).
    pub fn new() -> Self {
        let mut queues = BTreeMap::new();
        queues.insert(
            "default".to_string(),
            QueueSpec {
                capacity_pct: 100,
                max_capacity_pct: 100,
                user_limit_pct: 100,
                parent: None,
            },
        );
        CapacityScheduler { queues }
    }

    /// Add (or replace) a queue.
    pub fn queue(mut self, name: impl Into<String>, spec: QueueSpec) -> Self {
        self.queues.insert(name.into(), spec.clamped());
        self
    }

    /// Jobs whose pool names no configured queue land in `default`.
    fn route<'a>(&self, pool: &'a str) -> &'a str
    where
        'a: 'a,
    {
        if self.queues.contains_key(pool) {
            pool
        } else {
            "default"
        }
    }

    /// Absolute capacity and ceiling of `name` as fractions in basis
    /// points (1/10_000) of the whole cluster, composed down the parent
    /// chain. A malformed parent link degrades to root-level.
    fn abs_caps_bp(&self, name: &str) -> (u64, u64) {
        let mut cap_bp = 10_000u64;
        let mut max_bp = 10_000u64;
        let mut cur = Some(name.to_string());
        // Parent chains are operator config; a cycle would loop forever,
        // so bound the walk by the queue count.
        for _ in 0..=self.queues.len() {
            let Some(q) = cur.as_ref().and_then(|n| self.queues.get(n)) else { break };
            cap_bp = cap_bp * q.capacity_pct / 100;
            max_bp = max_bp * q.max_capacity_pct / 100;
            cur = q.parent.clone();
        }
        (cap_bp.max(1), max_bp.max(1))
    }

    /// Guaranteed and maximum slot counts of `name` on a cluster of
    /// `total` slots. Every queue can always run at least one task, or a
    /// tiny queue on a tiny cluster would deadlock its jobs forever.
    fn slot_bounds(&self, name: &str, total: usize) -> (u64, u64) {
        let (cap_bp, max_bp) = self.abs_caps_bp(name);
        let total = total as u64;
        let guaranteed = (total * cap_bp / 10_000).max(1);
        let maximum = (total * max_bp / 10_000).max(1);
        (guaranteed, maximum.max(guaranteed))
    }

    /// Running tasks currently charged to `name` (its own jobs plus every
    /// descendant queue's).
    fn running_under(&self, name: &str, jobs: &[JobView<'_>]) -> u64 {
        jobs.iter()
            .filter(|v| {
                let mut cur = Some(self.route(v.pool).to_string());
                for _ in 0..=self.queues.len() {
                    match cur {
                        Some(ref q) if q == name => return true,
                        Some(ref q) => cur = self.queues.get(q).and_then(|s| s.parent.clone()),
                        None => return false,
                    }
                }
                false
            })
            .map(|v| v.running.len() as u64)
            .sum()
    }

    /// Maximum slots of `name` and every ancestor all hold after adding
    /// one more task to `name`.
    fn within_ceilings(&self, name: &str, jobs: &[JobView<'_>], total: usize) -> bool {
        let mut cur = Some(name.to_string());
        for _ in 0..=self.queues.len() {
            let Some(q) = cur else { return true };
            let (_, max_slots) = self.slot_bounds(&q, total);
            if self.running_under(&q, jobs) >= max_slots {
                return false;
            }
            cur = self.queues.get(&q).and_then(|s| s.parent.clone());
        }
        true
    }
}

impl QueueSpec {
    fn clamped(mut self) -> Self {
        self.capacity_pct = self.capacity_pct.clamp(1, 100);
        self.max_capacity_pct = self.max_capacity_pct.clamp(self.capacity_pct, 100);
        self.user_limit_pct = self.user_limit_pct.clamp(1, 100);
        self
    }
}

impl Scheduler for CapacityScheduler {
    fn name(&self) -> &'static str {
        "capacity"
    }

    fn next_assignment(
        &mut self,
        _now: SimTime,
        slots: &[SlotState],
        jobs: &[JobView<'_>],
        env: &dyn SchedulerEnv,
    ) -> Option<Assignment> {
        let slot = pick_slot(slots)?;
        let node = slots[slot].node;
        let total = slots.len();
        // Leaf queues with demand, by smallest used-capacity ratio
        // (cross-multiplied: used_a/cap_a < used_b/cap_b), then name.
        let mut demand: BTreeMap<&str, u64> = BTreeMap::new();
        for v in jobs {
            if !v.pending.is_empty() {
                *demand.entry(self.route(v.pool)).or_default() += v.pending.len() as u64;
            }
        }
        let mut queues: Vec<&str> = demand.keys().copied().collect();
        queues.sort_by(|&a, &b| {
            let (cap_a, _) = self.abs_caps_bp(a);
            let (cap_b, _) = self.abs_caps_bp(b);
            let (used_a, used_b) = (self.running_under(a, jobs), self.running_under(b, jobs));
            (used_a * cap_b).cmp(&(used_b * cap_a)).then(a.cmp(b))
        });
        let rank = fifo_rank(jobs);
        for queue in queues {
            if !self.within_ceilings(queue, jobs, total) {
                continue;
            }
            let (_, max_slots) = self.slot_bounds(queue, total);
            let spec = self.queues.get(queue).cloned().unwrap_or_default().clamped();
            let user_cap = (max_slots * spec.user_limit_pct / 100).max(1);
            // Running per user inside this queue (user-limit enforcement).
            let mut user_running: BTreeMap<&str, u64> = BTreeMap::new();
            for v in jobs {
                if self.route(v.pool) == queue {
                    *user_running.entry(v.user).or_default() += v.running.len() as u64;
                }
            }
            // FIFO within the queue, skipping users at their limit.
            for &j in &rank {
                if self.route(jobs[j].pool) != queue || jobs[j].pending.is_empty() {
                    continue;
                }
                if user_running.get(jobs[j].user).copied().unwrap_or(0) >= user_cap {
                    continue;
                }
                if let Some(task) = pick_task(j, &jobs[j], node, env) {
                    return Some(Assignment { slot, job: j, task });
                }
            }
        }
        None
    }
}

// ------------------------------------------------------- construction

/// Build the configured scheduler: `mapred.jobtracker.scheduler` picks
/// the policy, the policy-specific keys tune it. Unknown policies are a
/// config error at cluster construction, not mid-job.
pub fn scheduler_from_config(conf: &Configuration) -> Result<Box<dyn Scheduler>> {
    match conf.get_or(keys::MAPRED_SCHEDULER, "fifo") {
        "fifo" => Ok(Box::new(FifoScheduler)),
        "fair" => {
            let secs = conf.get_u64(keys::MAPRED_FAIR_PREEMPTION_TIMEOUT_SECS, 30)?;
            Ok(Box::new(FairScheduler::new(SimDuration::from_secs(secs))))
        }
        "capacity" => {
            let max_pct = conf.get_u64(keys::MAPRED_CAPACITY_MAX_PCT, 100)?;
            let user_pct = conf.get_u64(keys::MAPRED_CAPACITY_USER_LIMIT_PCT, 100)?;
            Ok(Box::new(CapacityScheduler::new().queue(
                "default",
                QueueSpec {
                    capacity_pct: 100,
                    max_capacity_pct: max_pct,
                    user_limit_pct: user_pct,
                    parent: None,
                },
            )))
        }
        other => Err(HlError::Config(format!(
            "{}: unknown scheduler {other:?} (fifo|fair|capacity)",
            keys::MAPRED_SCHEDULER
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime(us)
    }

    struct OwnedJob {
        user: String,
        pool: String,
        priority: u32,
        submitted_at: SimTime,
        pending: Vec<u32>,
        running: Vec<u32>,
    }

    impl OwnedJob {
        fn new(user: &str, pool: &str, pending: Vec<u32>, running: Vec<u32>) -> Self {
            OwnedJob {
                user: user.into(),
                pool: pool.into(),
                priority: 0,
                submitted_at: SimTime::ZERO,
                pending,
                running,
            }
        }

        fn view(&self) -> JobView<'_> {
            JobView {
                user: &self.user,
                pool: &self.pool,
                priority: self.priority,
                submitted_at: self.submitted_at,
                pending: &self.pending,
                running: &self.running,
            }
        }
    }

    fn slots(n: u32) -> Vec<SlotState> {
        (0..n).map(|i| SlotState { node: NodeId(i), free_at: SimTime::ZERO }).collect()
    }

    #[test]
    fn fifo_prefers_earliest_slot_and_lowest_task() {
        let mut s = FifoScheduler;
        let mut sl = slots(3);
        sl[0].free_at = t(500);
        let jobs = [OwnedJob::new("a", "default", vec![7, 2, 5], vec![])];
        let views: Vec<JobView> = jobs.iter().map(|j| j.view()).collect();
        let a = s.next_assignment(SimTime::ZERO, &sl, &views, &UniformEnv).unwrap();
        assert_eq!((a.slot, a.job, a.task), (1, 0, 2));
    }

    #[test]
    fn fifo_respects_priority_then_submission() {
        let mut s = FifoScheduler;
        let sl = slots(1);
        let mut j0 = OwnedJob::new("a", "default", vec![0], vec![]);
        j0.submitted_at = t(10);
        let mut j1 = OwnedJob::new("b", "default", vec![0], vec![]);
        j1.submitted_at = t(20);
        j1.priority = 5;
        let views = [j0.view(), j1.view()];
        let a = s.next_assignment(SimTime::ZERO, &sl, &views, &UniformEnv).unwrap();
        assert_eq!(a.job, 1, "higher priority wins despite later submission");
    }

    #[test]
    fn fair_serves_needy_pool_first() {
        let mut s =
            FairScheduler::new(SimDuration::from_secs(30)).pool("prod", 1, 2).pool("adhoc", 1, 0);
        let sl = slots(1);
        let jobs = [
            OwnedJob::new("a", "adhoc", vec![0, 1], vec![0, 1, 2]),
            OwnedJob::new("p", "prod", vec![0], vec![]),
        ];
        let views: Vec<JobView> = jobs.iter().map(|j| j.view()).collect();
        let a = s.next_assignment(SimTime::ZERO, &sl, &views, &UniformEnv).unwrap();
        assert_eq!(a.job, 1, "prod is below min share");
    }

    #[test]
    fn fair_weights_shift_the_deficit_order() {
        let mut s =
            FairScheduler::new(SimDuration::from_secs(30)).pool("heavy", 3, 0).pool("light", 1, 0);
        let sl = slots(1);
        // heavy runs 2 of weight 3 (ratio 2/3), light runs 1 of weight 1
        // (ratio 1) → heavy is further below its share.
        let jobs = [
            OwnedJob::new("h", "heavy", vec![0], vec![0, 1]),
            OwnedJob::new("l", "light", vec![0], vec![0]),
        ];
        let views: Vec<JobView> = jobs.iter().map(|j| j.view()).collect();
        let a = s.next_assignment(SimTime::ZERO, &sl, &views, &UniformEnv).unwrap();
        assert_eq!(a.job, 0);
    }

    #[test]
    fn fair_balances_users_inside_a_pool() {
        let mut s = FairScheduler::new(SimDuration::from_secs(30));
        let sl = slots(1);
        let mut j0 = OwnedJob::new("alice", "default", vec![0], vec![0, 1]);
        j0.submitted_at = t(1);
        let mut j1 = OwnedJob::new("bob", "default", vec![0], vec![]);
        j1.submitted_at = t(2);
        let views = [j0.view(), j1.view()];
        let a = s.next_assignment(SimTime::ZERO, &sl, &views, &UniformEnv).unwrap();
        assert_eq!(a.job, 1, "bob runs nothing; alice runs two");
    }

    #[test]
    fn fair_preempts_only_after_timeout_and_accounts() {
        let mut s = FairScheduler::new(SimDuration::from_secs(10)).pool("prod", 1, 2);
        let jobs = [
            OwnedJob::new("a", "adhoc", vec![], vec![0, 1, 2, 3]),
            OwnedJob::new("p", "prod", vec![0, 1], vec![]),
        ];
        let views: Vec<JobView> = jobs.iter().map(|j| j.view()).collect();
        // First observation arms the clock; nothing is preempted yet.
        assert!(s.preemptions(t(0), 4, &views).is_empty());
        // Still inside the timeout.
        assert!(s.preemptions(SimTime(5_000_000), 4, &views).is_empty());
        // Past the timeout: exactly the 2-slot deficit is preempted, from
        // the over-share pool's newest tasks.
        let p = s.preemptions(SimTime(10_000_000), 4, &views);
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|x| x.job == 0));
        assert_eq!(p[0].task, 3);
        // The clock restarted: an immediate re-check preempts nothing.
        assert!(s.preemptions(SimTime(10_000_001), 4, &views).is_empty());
    }

    #[test]
    fn fair_starvation_clock_resets_once_served() {
        let mut s = FairScheduler::new(SimDuration::from_secs(10)).pool("prod", 1, 1);
        let starved = [
            OwnedJob::new("a", "adhoc", vec![], vec![0, 1]),
            OwnedJob::new("p", "prod", vec![0], vec![]),
        ];
        let views: Vec<JobView> = starved.iter().map(|j| j.view()).collect();
        assert!(s.preemptions(t(0), 2, &views).is_empty());
        // Pool gets served → clock clears; starving again starts over.
        let served = [
            OwnedJob::new("a", "adhoc", vec![], vec![0, 1]),
            OwnedJob::new("p", "prod", vec![], vec![0]),
        ];
        let views: Vec<JobView> = served.iter().map(|j| j.view()).collect();
        assert!(s.preemptions(SimTime(20_000_000), 2, &views).is_empty());
        let views: Vec<JobView> = starved.iter().map(|j| j.view()).collect();
        assert!(s.preemptions(SimTime(21_000_000), 2, &views).is_empty(), "clock rearms fresh");
        assert!(s.preemptions(SimTime(25_000_000), 2, &views).is_empty(), "4 s < timeout");
        assert_eq!(s.preemptions(SimTime(31_000_000), 2, &views).len(), 1);
    }

    #[test]
    fn capacity_orders_queues_by_used_ratio_and_caps_elastic() {
        let mut s = CapacityScheduler::new()
            .queue(
                "batch",
                QueueSpec {
                    capacity_pct: 50,
                    max_capacity_pct: 75,
                    user_limit_pct: 100,
                    parent: None,
                },
            )
            .queue(
                "adhoc",
                QueueSpec {
                    capacity_pct: 50,
                    max_capacity_pct: 100,
                    user_limit_pct: 100,
                    parent: None,
                },
            );
        let sl = slots(4);
        // batch at 3/4 of its 75% ceiling on 4 slots (= 3 slots): full.
        let jobs = [
            OwnedJob::new("b", "batch", vec![9], vec![0, 1, 2]),
            OwnedJob::new("a", "adhoc", vec![5], vec![]),
        ];
        let views: Vec<JobView> = jobs.iter().map(|j| j.view()).collect();
        let a = s.next_assignment(SimTime::ZERO, &sl, &views, &UniformEnv).unwrap();
        assert_eq!(a.job, 1, "batch is at its elastic ceiling (3 of 4 slots)");
    }

    #[test]
    fn capacity_user_limit_skips_hog_inside_queue() {
        let mut s = CapacityScheduler::new().queue(
            "default",
            QueueSpec {
                capacity_pct: 100,
                max_capacity_pct: 100,
                user_limit_pct: 50,
                parent: None,
            },
        );
        let sl = slots(4);
        // hog already runs 2 = 50% of the 4-slot queue; its next job must
        // wait behind the other user's despite earlier submission.
        let mut j0 = OwnedJob::new("hog", "default", vec![0], vec![0, 1]);
        j0.submitted_at = t(1);
        let mut j1 = OwnedJob::new("meek", "default", vec![0], vec![]);
        j1.submitted_at = t(2);
        let views = [j0.view(), j1.view()];
        let a = s.next_assignment(SimTime::ZERO, &sl, &views, &UniformEnv).unwrap();
        assert_eq!(a.job, 1);
    }

    #[test]
    fn capacity_hierarchy_composes_parent_ceilings() {
        let mut s = CapacityScheduler::new()
            .queue(
                "org",
                QueueSpec {
                    capacity_pct: 50,
                    max_capacity_pct: 50,
                    user_limit_pct: 100,
                    parent: None,
                },
            )
            .queue(
                "org-a",
                QueueSpec {
                    capacity_pct: 100,
                    max_capacity_pct: 100,
                    user_limit_pct: 100,
                    parent: Some("org".into()),
                },
            );
        let sl = slots(8);
        // org-a alone may use 100% of org's 50% = 4 of 8 slots.
        let jobs = [OwnedJob::new("u", "org-a", vec![7], vec![0, 1, 2, 3])];
        let views: Vec<JobView> = jobs.iter().map(|j| j.view()).collect();
        assert!(
            s.next_assignment(SimTime::ZERO, &sl, &views, &UniformEnv).is_none(),
            "parent ceiling binds the child"
        );
        let jobs = [OwnedJob::new("u", "org-a", vec![7], vec![0, 1, 2])];
        let views: Vec<JobView> = jobs.iter().map(|j| j.view()).collect();
        assert!(s.next_assignment(SimTime::ZERO, &sl, &views, &UniformEnv).is_some());
    }

    #[test]
    fn from_config_builds_each_policy_and_rejects_garbage() {
        let mut c = Configuration::with_defaults();
        assert_eq!(scheduler_from_config(&c).unwrap().name(), "fifo");
        c.set(keys::MAPRED_SCHEDULER, "fair");
        assert_eq!(scheduler_from_config(&c).unwrap().name(), "fair");
        c.set(keys::MAPRED_SCHEDULER, "capacity");
        assert_eq!(scheduler_from_config(&c).unwrap().name(), "capacity");
        c.set(keys::MAPRED_SCHEDULER, "lottery");
        assert!(scheduler_from_config(&c).is_err());
    }
}
