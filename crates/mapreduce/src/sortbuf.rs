//! The map-side collect → sort → spill buffer.
//!
//! Map output pairs are serialized immediately (key via its
//! order-preserving encoding, value via `Writable`), partitioned by key
//! hash, and buffered; when the buffer exceeds `io.sort` capacity the
//! partitions are sorted **by raw bytes** and spilled, with the combiner
//! folding each equal-key group — exactly Hadoop's spill pipeline, and the
//! mechanism behind the lecture's "combiner trades map time for shuffle
//! bytes" observation.

use hl_common::counters::{Counters, TaskCounter};
use hl_common::hash::default_partition;
use hl_common::keys::SortableKey;
use hl_common::writable::Writable;

use crate::api::{Combiner, PartitionFn};

/// One serialized, sorted `(key, value)` run for one partition.
pub type SortedRun = Vec<(Vec<u8>, Vec<u8>)>;

/// Final output of a map task: one sorted run per partition, plus the
/// I/O totals the engine charges to the virtual clock.
#[derive(Debug, Clone, Default)]
pub struct MapOutput {
    /// Sorted, combined output per partition.
    pub partitions: Vec<SortedRun>,
    /// Bytes written to local disk across all spills + the final merge.
    pub spill_bytes_written: u64,
    /// Bytes re-read from local disk by the final merge.
    pub spill_bytes_read: u64,
    /// Number of spill passes.
    pub num_spills: u32,
}

impl MapOutput {
    /// Serialized size of one partition's run.
    pub fn partition_bytes(&self, p: usize) -> u64 {
        self.partitions[p]
            .iter()
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum()
    }

    /// Serialized size across all partitions.
    pub fn total_bytes(&self) -> u64 {
        (0..self.partitions.len()).map(|p| self.partition_bytes(p)).sum()
    }

    /// Total records across all partitions.
    pub fn total_records(&self) -> u64 {
        self.partitions.iter().map(|p| p.len() as u64).sum()
    }
}

/// The in-memory collect/sort/spill buffer for one map task.
pub struct SortBuffer<K: SortableKey, V: Writable> {
    num_partitions: usize,
    buffer_limit: usize,
    current: Vec<Vec<(Vec<u8>, Vec<u8>)>>,
    bytes_buffered: usize,
    /// High-water mark of buffered bytes (the in-mapper-combining memory
    /// comparison in experiment N2 reads this).
    pub peak_buffered: usize,
    spills: Vec<Vec<SortedRun>>,
    spill_bytes_written: u64,
    partitioner: Option<PartitionFn<K>>,
    _types: std::marker::PhantomData<fn() -> (K, V)>,
}

impl<K: SortableKey, V: Writable> SortBuffer<K, V> {
    /// Buffer with `num_partitions` outputs and a spill threshold.
    pub fn new(num_partitions: usize, buffer_limit: usize) -> Self {
        assert!(num_partitions > 0);
        SortBuffer {
            num_partitions,
            buffer_limit: buffer_limit.max(1),
            current: vec![Vec::new(); num_partitions],
            bytes_buffered: 0,
            peak_buffered: 0,
            spills: Vec::new(),
            spill_bytes_written: 0,
            partitioner: None,
            _types: std::marker::PhantomData,
        }
    }

    /// Replace hash partitioning with a custom partitioner.
    pub fn with_partitioner(mut self, f: Option<PartitionFn<K>>) -> Self {
        self.partitioner = f;
        self
    }

    /// Serialize and buffer one pair; spills (sort + combine) when full.
    pub fn collect<C>(
        &mut self,
        key: &K,
        value: &V,
        combiner: Option<&mut C>,
        counters: &mut Counters,
    ) where
        C: Combiner<K = K, V = V>,
    {
        let kbytes = key.ordered_bytes();
        let vbytes = value.to_bytes();
        let p = match &self.partitioner {
            Some(f) => f(key, &kbytes, self.num_partitions).min(self.num_partitions - 1),
            None => default_partition(&kbytes, self.num_partitions),
        };
        self.bytes_buffered += kbytes.len() + vbytes.len();
        self.peak_buffered = self.peak_buffered.max(self.bytes_buffered);
        self.current[p].push((kbytes, vbytes));
        counters.incr_task(TaskCounter::MapOutputBytes, 0); // group exists even when empty
        if self.bytes_buffered >= self.buffer_limit {
            self.spill(combiner, counters);
        }
    }

    /// Force a spill of the current buffer (sort, combine, "write").
    pub fn spill<C>(&mut self, combiner: Option<&mut C>, counters: &mut Counters)
    where
        C: Combiner<K = K, V = V>,
    {
        if self.bytes_buffered == 0 {
            return;
        }
        let mut spill: Vec<SortedRun> = Vec::with_capacity(self.num_partitions);
        let mut combiner = combiner;
        for part in self.current.iter_mut() {
            let mut run = std::mem::take(part);
            // Raw-byte sort: correct because keys encode order-preserving.
            run.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            counters.incr_task(TaskCounter::SpilledRecords, run.len() as u64);
            let run = match combiner.as_deref_mut() {
                Some(c) => combine_run(run, c, counters),
                None => run,
            };
            self.spill_bytes_written +=
                run.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum::<u64>();
            spill.push(run);
        }
        self.spills.push(spill);
        self.bytes_buffered = 0;
    }

    /// Final spill + merge of all spills into one sorted run per partition.
    pub fn finish<C>(mut self, combiner: Option<&mut C>, counters: &mut Counters) -> MapOutput
    where
        C: Combiner<K = K, V = V>,
    {
        let mut combiner = combiner;
        self.spill(combiner.as_deref_mut(), counters);
        let num_spills = self.spills.len() as u32;
        let mut merged: Vec<SortedRun> = Vec::with_capacity(self.num_partitions);
        let mut merge_read = 0u64;
        let mut merge_written = 0u64;

        for p in 0..self.num_partitions {
            let runs: Vec<SortedRun> =
                self.spills.iter_mut().map(|s| std::mem::take(&mut s[p])).collect();
            let out = if runs.len() == 1 {
                runs.into_iter().next().unwrap()
            } else {
                // Multi-spill merge re-reads and re-writes everything, and
                // the combiner runs once more over merged groups.
                let input_bytes: u64 = runs
                    .iter()
                    .flatten()
                    .map(|(k, v)| (k.len() + v.len()) as u64)
                    .sum();
                merge_read += input_bytes;
                let groups = crate::merge::merge_runs(runs);
                let out = match combiner.as_deref_mut() {
                    Some(c) => combine_groups(groups, c, counters),
                    None => groups
                        .into_iter()
                        .flat_map(|(k, vs)| {
                            vs.into_iter().map(move |v| (k.clone(), v))
                        })
                        .collect(),
                };
                merge_written +=
                    out.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum::<u64>();
                out
            };
            merged.push(out);
        }

        MapOutput {
            partitions: merged,
            spill_bytes_written: self.spill_bytes_written + merge_written,
            spill_bytes_read: merge_read,
            num_spills,
        }
    }
}

/// Run the combiner over consecutive equal-key records of a sorted run.
fn combine_run<K, V, C>(run: SortedRun, combiner: &mut C, counters: &mut Counters) -> SortedRun
where
    K: SortableKey,
    V: Writable,
    C: Combiner<K = K, V = V>,
{
    let mut groups: Vec<(Vec<u8>, Vec<Vec<u8>>)> = Vec::new();
    for (k, v) in run {
        match groups.last_mut() {
            Some((gk, vs)) if *gk == k => vs.push(v),
            _ => groups.push((k, vec![v])),
        }
    }
    combine_groups(groups, combiner, counters)
}

/// Apply the combiner to `(key, values)` groups, reserializing its output.
fn combine_groups<K, V, C>(
    groups: Vec<(Vec<u8>, Vec<Vec<u8>>)>,
    combiner: &mut C,
    counters: &mut Counters,
) -> SortedRun
where
    K: SortableKey,
    V: Writable,
    C: Combiner<K = K, V = V>,
{
    let mut out = Vec::with_capacity(groups.len());
    for (kbytes, vbytes_list) in groups {
        let mut kslice = kbytes.as_slice();
        let key = K::decode_ordered(&mut kslice).expect("combiner key round-trip");
        let values: Vec<V> = vbytes_list
            .iter()
            .map(|b| V::from_bytes(b).expect("combiner value round-trip"))
            .collect();
        counters.incr_task(TaskCounter::CombineInputRecords, values.len() as u64);
        let mut folded = Vec::new();
        combiner.combine(&key, values, &mut folded);
        counters.incr_task(TaskCounter::CombineOutputRecords, folded.len() as u64);
        for v in folded {
            out.push((kbytes.clone(), v.to_bytes()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sums counts per word — the WordCount combiner.
    struct SumCombiner;
    impl Combiner for SumCombiner {
        type K = String;
        type V = u64;
        fn combine(&mut self, _k: &String, values: Vec<u64>, out: &mut Vec<u64>) {
            out.push(values.into_iter().sum());
        }
    }

    type NoC = crate::api::NoCombiner<String, u64>;

    fn collect_all(
        buf: &mut SortBuffer<String, u64>,
        pairs: &[(&str, u64)],
        counters: &mut Counters,
    ) {
        for (k, v) in pairs {
            buf.collect::<NoC>(&k.to_string(), v, None, counters);
        }
    }

    #[test]
    fn single_partition_sorts_by_key() {
        let mut counters = Counters::new();
        let mut buf: SortBuffer<String, u64> = SortBuffer::new(1, usize::MAX >> 1);
        collect_all(&mut buf, &[("pear", 1), ("apple", 2), ("mango", 3), ("apple", 4)], &mut counters);
        let out = buf.finish::<NoC>(None, &mut counters);
        let keys: Vec<String> = out.partitions[0]
            .iter()
            .map(|(k, _)| {
                let mut s = k.as_slice();
                String::decode_ordered(&mut s).unwrap()
            })
            .collect();
        assert_eq!(keys, vec!["apple", "apple", "mango", "pear"]);
        assert_eq!(out.num_spills, 1);
        assert_eq!(out.total_records(), 4);
    }

    #[test]
    fn partitioning_is_stable_and_complete() {
        let mut counters = Counters::new();
        let mut buf: SortBuffer<String, u64> = SortBuffer::new(4, usize::MAX >> 1);
        let pairs: Vec<(String, u64)> =
            (0..100).map(|i| (format!("key{i}"), i as u64)).collect();
        for (k, v) in &pairs {
            buf.collect::<NoC>(k, v, None, &mut counters);
        }
        let out = buf.finish::<NoC>(None, &mut counters);
        assert_eq!(out.partitions.len(), 4);
        assert_eq!(out.total_records(), 100);
        // Same key always lands in the same partition.
        for p in &out.partitions {
            assert!(p.windows(2).all(|w| w[0].0 <= w[1].0), "each partition sorted");
        }
    }

    #[test]
    fn combiner_folds_at_spill_time() {
        let mut counters = Counters::new();
        let mut buf: SortBuffer<String, u64> = SortBuffer::new(1, usize::MAX >> 1);
        for _ in 0..1000 {
            buf.collect(&"the".to_string(), &1, Some(&mut SumCombiner), &mut counters);
        }
        let out = buf.finish(Some(&mut SumCombiner), &mut counters);
        assert_eq!(out.partitions[0].len(), 1, "1000 pairs folded to 1");
        let (_, v) = &out.partitions[0][0];
        assert_eq!(u64::from_bytes(v).unwrap(), 1000);
        assert_eq!(counters.task(TaskCounter::CombineInputRecords), 1000);
        assert_eq!(counters.task(TaskCounter::CombineOutputRecords), 1);
    }

    #[test]
    fn small_buffer_forces_multiple_spills_and_merge() {
        let mut counters = Counters::new();
        let mut buf: SortBuffer<String, u64> = SortBuffer::new(2, 256);
        let words = ["alpha", "beta", "gamma", "delta"];
        for i in 0..200u64 {
            let w = words[(i % 4) as usize].to_string();
            buf.collect(&w, &1, Some(&mut SumCombiner), &mut counters);
        }
        let out = buf.finish(Some(&mut SumCombiner), &mut counters);
        assert!(out.num_spills > 1, "256-byte buffer must spill repeatedly");
        assert!(out.spill_bytes_read > 0, "merge re-reads spills");
        // After the final combine pass each word appears exactly once with
        // its total count.
        let mut totals = std::collections::BTreeMap::new();
        for p in &out.partitions {
            for (k, v) in p {
                let mut ks = k.as_slice();
                let key = String::decode_ordered(&mut ks).unwrap();
                *totals.entry(key).or_insert(0u64) += u64::from_bytes(v).unwrap();
            }
        }
        for w in words {
            assert_eq!(totals[w], 50, "{w}");
        }
        // With a working final-merge combine, each word is a single record.
        assert_eq!(out.total_records(), 4);
    }

    #[test]
    fn without_combiner_all_records_survive_spills() {
        let mut counters = Counters::new();
        let mut buf: SortBuffer<String, u64> = SortBuffer::new(1, 128);
        for i in 0..100u64 {
            buf.collect::<NoC>(&"k".to_string(), &i, None, &mut counters);
        }
        let out = buf.finish::<NoC>(None, &mut counters);
        assert_eq!(out.total_records(), 100);
        let values: std::collections::BTreeSet<u64> = out.partitions[0]
            .iter()
            .map(|(_, v)| u64::from_bytes(v).unwrap())
            .collect();
        assert_eq!(values.len(), 100, "no values lost or duplicated");
    }

    #[test]
    fn peak_buffer_tracks_high_water() {
        let mut counters = Counters::new();
        let mut buf: SortBuffer<String, u64> = SortBuffer::new(1, 10_000);
        collect_all(&mut buf, &[("aaaa", 1), ("bbbb", 2)], &mut counters);
        let peak = buf.peak_buffered;
        assert!(peak > 0);
        buf.spill::<NoC>(None, &mut counters);
        collect_all(&mut buf, &[("c", 3)], &mut counters);
        assert_eq!(buf.peak_buffered, peak, "smaller second fill keeps old peak");
    }

    #[test]
    fn spilled_records_counter_counts_every_spill_pass() {
        let mut counters = Counters::new();
        let mut buf: SortBuffer<String, u64> = SortBuffer::new(1, usize::MAX >> 1);
        collect_all(&mut buf, &[("a", 1), ("b", 2)], &mut counters);
        let _ = buf.finish::<NoC>(None, &mut counters);
        assert_eq!(counters.task(TaskCounter::SpilledRecords), 2);
    }
}
