//! The map-side collect → sort → spill buffer.
//!
//! Map output pairs are serialized immediately (key via its
//! order-preserving encoding, value via `Writable`), partitioned by key
//! hash, and buffered; when the buffer exceeds `io.sort` capacity the
//! records are sorted **by raw bytes** and spilled, with the combiner
//! folding each equal-key group — exactly Hadoop's spill pipeline, and the
//! mechanism behind the lecture's "combiner trades map time for shuffle
//! bytes" observation.
//!
//! Layout follows Hadoop's `MapOutputBuffer` kvbuffer design: one flat
//! byte arena holds every serialized record back to back, and a compact
//! index array of `(partition, key_off, key_len, val_off, val_len)`
//! entries is what gets sorted — comparisons touch only the raw key
//! slices, and no per-record `Vec` allocations happen on the collect path.

use std::sync::Arc;

use hl_common::counters::{Counters, TaskCounter};
use hl_common::hash::default_partition;
use hl_common::keys::SortableKey;
use hl_common::writable::Writable;

use crate::api::{Combiner, PartitionFn};

/// One record's location inside a run arena. Offsets are `u32` to keep
/// the sorted index at 20 bytes per record; the buffer force-spills
/// before the arena could outgrow them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct KvSlot {
    key_off: u32,
    key_len: u32,
    val_off: u32,
    val_len: u32,
}

impl KvSlot {
    fn bytes(&self) -> u64 {
        (self.key_len + self.val_len) as u64
    }
}

/// A sorted run of serialized `(key, value)` records for one partition,
/// backed by a shared byte arena.
///
/// Records are exposed as borrowed slices — merging and shuffling never
/// copy key/value bytes. `Clone` is O(1) (two `Arc` bumps), which is what
/// lets the engine hand a map task's partition to a reduce attempt
/// without duplicating the payload.
#[derive(Debug, Clone, Default)]
pub struct SortedRun {
    arena: Arc<Vec<u8>>,
    slots: Arc<Vec<KvSlot>>,
    /// Cached serialized size (sum of key+value lengths).
    data_bytes: u64,
}

impl SortedRun {
    fn from_parts(arena: Arc<Vec<u8>>, slots: Vec<KvSlot>) -> Self {
        let data_bytes = slots.iter().map(KvSlot::bytes).sum();
        SortedRun { arena, slots: Arc::new(slots), data_bytes }
    }

    /// Build a run from owned pairs of already-serialized bytes, sorting
    /// them by raw key (stable, so equal keys keep insertion order).
    /// Convenience for tests and benchmarks; the hot path builds runs
    /// straight from the spill arena.
    pub fn from_pairs(mut pairs: Vec<(Vec<u8>, Vec<u8>)>) -> Self {
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut b = RunBuilder::new();
        for (k, v) in &pairs {
            b.push_raw(k, v);
        }
        b.finish()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Serialized size in bytes — the single size-accounting helper every
    /// spill/merge/shuffle charge goes through.
    pub fn bytes(&self) -> u64 {
        self.data_bytes
    }

    /// Borrow record `i` as `(key, value)` slices.
    pub fn get(&self, i: usize) -> (&[u8], &[u8]) {
        let s = &self.slots[i];
        (
            &self.arena[s.key_off as usize..(s.key_off + s.key_len) as usize],
            &self.arena[s.val_off as usize..(s.val_off + s.val_len) as usize],
        )
    }

    /// Borrow just the key of record `i` (merge comparisons).
    pub fn key(&self, i: usize) -> &[u8] {
        let s = &self.slots[i];
        &self.arena[s.key_off as usize..(s.key_off + s.key_len) as usize]
    }

    /// Iterate `(key, value)` slices in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Copy out owned pairs (tests and debugging; the hot path never does
    /// this).
    pub fn to_pairs(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect()
    }
}

/// Accumulates serialized records into a fresh arena, in push order.
/// Used for combiner output and merge output, where records are produced
/// already sorted.
#[derive(Debug, Default)]
pub struct RunBuilder {
    arena: Vec<u8>,
    slots: Vec<KvSlot>,
}

impl RunBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one record from raw serialized bytes.
    pub fn push_raw(&mut self, key: &[u8], value: &[u8]) {
        let key_off = self.arena.len() as u32;
        self.arena.extend_from_slice(key);
        let val_off = self.arena.len() as u32;
        self.arena.extend_from_slice(value);
        self.slots.push(KvSlot {
            key_off,
            key_len: key.len() as u32,
            val_off,
            val_len: value.len() as u32,
        });
    }

    /// Append one record with raw key bytes and a `Writable` value
    /// serialized in place (combiner output path — no temp `Vec`).
    pub fn push_value<V: Writable>(&mut self, key: &[u8], value: &V) {
        let key_off = self.arena.len() as u32;
        self.arena.extend_from_slice(key);
        let val_off = self.arena.len() as u32;
        value.write(&mut self.arena);
        self.slots.push(KvSlot {
            key_off,
            key_len: key.len() as u32,
            val_off,
            val_len: (self.arena.len() - val_off as usize) as u32,
        });
    }

    /// Seal into a run. Records must have been pushed in sorted key order.
    pub fn finish(self) -> SortedRun {
        debug_assert!(
            self.slots.windows(2).all(|w| {
                let ka = &self.arena[w[0].key_off as usize..(w[0].key_off + w[0].key_len) as usize];
                let kb = &self.arena[w[1].key_off as usize..(w[1].key_off + w[1].key_len) as usize];
                ka <= kb
            }),
            "RunBuilder records not pushed in sorted order"
        );
        SortedRun::from_parts(Arc::new(self.arena), self.slots)
    }
}

/// Final output of a map task: one sorted run per partition, plus the
/// I/O totals the engine charges to the virtual clock.
#[derive(Debug, Clone, Default)]
pub struct MapOutput {
    /// Sorted, combined output per partition.
    pub partitions: Vec<SortedRun>,
    /// Bytes written to local disk across all spills + the final merge.
    pub spill_bytes_written: u64,
    /// Bytes re-read from local disk by the final merge.
    pub spill_bytes_read: u64,
    /// Number of spill passes.
    pub num_spills: u32,
    /// Per-partition on-disk/on-wire sizes after map-output compression
    /// (`mapred.compress.map.output`): the engine packs each partition's
    /// run into hl-codec frames and records the framed size here. `None`
    /// means the output travels uncompressed.
    pub wire_bytes: Option<Vec<u64>>,
}

impl MapOutput {
    /// Serialized size of one partition's run.
    pub fn partition_bytes(&self, p: usize) -> u64 {
        self.partitions[p].bytes()
    }

    /// Bytes partition `p` actually occupies on the shuffle wire: the
    /// framed size when map output is compressed, the serialized size
    /// otherwise.
    pub fn wire_partition_bytes(&self, p: usize) -> u64 {
        match &self.wire_bytes {
            Some(w) => w[p],
            None => self.partition_bytes(p),
        }
    }

    /// Serialized size across all partitions.
    pub fn total_bytes(&self) -> u64 {
        self.partitions.iter().map(SortedRun::bytes).sum()
    }

    /// Total records across all partitions.
    pub fn total_records(&self) -> u64 {
        self.partitions.iter().map(|p| p.len() as u64).sum()
    }

    /// Move partition `r` out, leaving an empty run (single-consumer
    /// runners that will not retry the reduce).
    pub fn take_partition(&mut self, r: usize) -> SortedRun {
        std::mem::take(&mut self.partitions[r])
    }
}

/// One record in the collect buffer: its partition, its arena slot, and
/// the first 8 key bytes cached inline. The spill sort permutes these
/// compact entries, never the record bytes, and most comparisons resolve
/// on the single `prefix` word — the arena is only touched when two
/// prefixes tie.
#[derive(Debug, Clone, Copy)]
struct KvEntry {
    partition: u32,
    /// Big-endian load of the first `min(8, key_len)` key bytes, zero
    /// padded. Zero padding orders a short key before any longer key with
    /// the same leading bytes *unless* the longer key continues with 0x00
    /// bytes — and equal prefixes always fall back to a full key compare,
    /// so the filter agrees with `memcmp` either way.
    prefix: u64,
    slot: KvSlot,
}

/// The sortable prefix of a key slice.
#[inline]
fn key_prefix(k: &[u8]) -> u64 {
    let mut p = [0u8; 8];
    let n = k.len().min(8);
    p[..n].copy_from_slice(&k[..n]);
    u64::from_be_bytes(p)
}

/// Cap on the collect arena so `u32` offsets always suffice; a spill is
/// forced at this size even if the configured limit is larger.
const MAX_ARENA: usize = 1 << 31;

/// The in-memory collect/sort/spill buffer for one map task.
pub struct SortBuffer<K: SortableKey, V: Writable> {
    num_partitions: usize,
    buffer_limit: usize,
    /// Flat kvbuffer: every buffered record's key and value bytes, back
    /// to back in collect order.
    arena: Vec<u8>,
    /// One compact entry per buffered record; sorting happens here.
    index: Vec<KvEntry>,
    /// High-water mark of buffered bytes (the in-mapper-combining memory
    /// comparison in experiment N2 reads this).
    pub peak_buffered: usize,
    spills: Vec<Vec<SortedRun>>,
    spill_bytes_written: u64,
    partitioner: Option<PartitionFn<K>>,
    _types: std::marker::PhantomData<fn() -> (K, V)>,
}

impl<K: SortableKey, V: Writable> SortBuffer<K, V> {
    /// Buffer with `num_partitions` outputs and a spill threshold.
    pub fn new(num_partitions: usize, buffer_limit: usize) -> Self {
        assert!(num_partitions > 0);
        SortBuffer {
            num_partitions,
            buffer_limit: buffer_limit.clamp(1, MAX_ARENA),
            arena: Vec::new(),
            index: Vec::new(),
            peak_buffered: 0,
            spills: Vec::new(),
            spill_bytes_written: 0,
            partitioner: None,
            _types: std::marker::PhantomData,
        }
    }

    /// Replace hash partitioning with a custom partitioner.
    pub fn with_partitioner(mut self, f: Option<PartitionFn<K>>) -> Self {
        self.partitioner = f;
        self
    }

    /// Serialize and buffer one pair; spills (sort + combine) when full.
    pub fn collect<C>(
        &mut self,
        key: &K,
        value: &V,
        combiner: Option<&mut C>,
        counters: &mut Counters,
    ) where
        C: Combiner<K = K, V = V>,
    {
        let key_off = self.arena.len() as u32;
        key.encode_ordered(&mut self.arena);
        let val_off = self.arena.len() as u32;
        value.write(&mut self.arena);
        let slot = KvSlot {
            key_off,
            key_len: val_off - key_off,
            val_off,
            val_len: (self.arena.len() - val_off as usize) as u32,
        };
        let kbytes = &self.arena[key_off as usize..val_off as usize];
        let p = match &self.partitioner {
            Some(f) => f(key, kbytes, self.num_partitions).min(self.num_partitions - 1),
            None => default_partition(kbytes, self.num_partitions),
        };
        self.index.push(KvEntry { partition: p as u32, prefix: key_prefix(kbytes), slot });
        self.peak_buffered = self.peak_buffered.max(self.arena.len());
        if self.arena.len() >= self.buffer_limit {
            self.spill(combiner, counters);
        }
    }

    /// Force a spill of the current buffer (sort, combine, "write").
    pub fn spill<C>(&mut self, combiner: Option<&mut C>, counters: &mut Counters)
    where
        C: Combiner<K = K, V = V>,
    {
        if self.index.is_empty() {
            return;
        }
        let arena = std::mem::take(&mut self.arena);
        let index = std::mem::take(&mut self.index);
        counters.incr_task(TaskCounter::SpilledRecords, index.len() as u64);

        // Bucket by partition with a stable counting sort, then order each
        // partition's entries by (key bytes, arrival order). Raw-byte
        // compare is correct because keys encode order-preserving; the
        // cached prefix word settles most comparisons without touching the
        // arena, and the key_off tiebreak makes the unstable sort
        // deterministic and equivalent to a stable by-key sort (offsets
        // grow in collect order).
        let np = self.num_partitions;
        let mut starts = vec![0usize; np + 1];
        for e in &index {
            starts[e.partition as usize + 1] += 1;
        }
        for p in 0..np {
            starts[p + 1] += starts[p];
        }
        let mut cursors = starts.clone();
        let mut ordered = index.clone(); // sized buffer; every slot rewritten below
        for e in &index {
            ordered[cursors[e.partition as usize]] = *e;
            cursors[e.partition as usize] += 1;
        }
        drop(index);
        for p in 0..np {
            ordered[starts[p]..starts[p + 1]].sort_unstable_by(|a, b| {
                a.prefix
                    .cmp(&b.prefix)
                    .then_with(|| key_slice(&arena, &a.slot).cmp(key_slice(&arena, &b.slot)))
                    .then_with(|| a.slot.key_off.cmp(&b.slot.key_off))
            });
        }

        let arena = Arc::new(arena);
        let mut combiner = combiner;
        let mut spill: Vec<SortedRun> = Vec::with_capacity(np);
        for p in 0..np {
            let entries = &ordered[starts[p]..starts[p + 1]];
            let run = match combiner.as_deref_mut() {
                // Combined runs reserialize into a fresh arena.
                Some(c) => combine_entries::<K, V, C>(&arena, entries, c, counters),
                // Without a combiner the run just references the shared
                // spill arena — zero copying.
                None => {
                    SortedRun::from_parts(arena.clone(), entries.iter().map(|e| e.slot).collect())
                }
            };
            self.spill_bytes_written += run.bytes();
            spill.push(run);
        }
        self.spills.push(spill);
    }

    /// Final spill + merge of all spills into one sorted run per partition.
    pub fn finish<C>(mut self, combiner: Option<&mut C>, counters: &mut Counters) -> MapOutput
    where
        C: Combiner<K = K, V = V>,
    {
        let mut combiner = combiner;
        self.spill(combiner.as_deref_mut(), counters);
        let num_spills = self.spills.len() as u32;
        let mut merged: Vec<SortedRun> = Vec::with_capacity(self.num_partitions);
        let mut merge_read = 0u64;
        let mut merge_written = 0u64;

        for p in 0..self.num_partitions {
            let runs: Vec<SortedRun> =
                self.spills.iter_mut().map(|s| std::mem::take(&mut s[p])).collect();
            let out = if runs.len() == 1 {
                runs.into_iter().next().unwrap()
            } else if runs.is_empty() {
                SortedRun::default()
            } else {
                // Multi-spill merge re-reads and re-writes everything, and
                // the combiner runs once more over merged groups.
                merge_read += crate::merge::runs_bytes(&runs);
                let out = match combiner.as_deref_mut() {
                    Some(c) => {
                        let mut b = RunBuilder::new();
                        for (kbytes, vlist) in crate::merge::merge_groups(&runs) {
                            combine_group::<K, V, C>(kbytes, &vlist, c, counters, &mut b);
                        }
                        b.finish()
                    }
                    None => {
                        let mut b = RunBuilder::new();
                        for (k, v) in crate::merge::merge_iter(&runs) {
                            b.push_raw(k, v);
                        }
                        b.finish()
                    }
                };
                merge_written += out.bytes();
                out
            };
            merged.push(out);
        }

        MapOutput {
            partitions: merged,
            spill_bytes_written: self.spill_bytes_written + merge_written,
            spill_bytes_read: merge_read,
            num_spills,
            wire_bytes: None,
        }
    }
}

fn key_slice<'a>(arena: &'a [u8], s: &KvSlot) -> &'a [u8] {
    &arena[s.key_off as usize..(s.key_off + s.key_len) as usize]
}

fn val_slice<'a>(arena: &'a [u8], s: &KvSlot) -> &'a [u8] {
    &arena[s.val_off as usize..(s.val_off + s.val_len) as usize]
}

/// Run the combiner over consecutive equal-key spans of sorted index
/// entries, serializing its output into a fresh run.
fn combine_entries<K, V, C>(
    arena: &[u8],
    entries: &[KvEntry],
    combiner: &mut C,
    counters: &mut Counters,
) -> SortedRun
where
    K: SortableKey,
    V: Writable,
    C: Combiner<K = K, V = V>,
{
    let mut out = RunBuilder::new();
    let mut i = 0usize;
    while i < entries.len() {
        let kbytes = key_slice(arena, &entries[i].slot);
        let mut j = i + 1;
        while j < entries.len() && key_slice(arena, &entries[j].slot) == kbytes {
            j += 1;
        }
        let vlist: Vec<&[u8]> = entries[i..j].iter().map(|e| val_slice(arena, &e.slot)).collect();
        combine_group::<K, V, C>(kbytes, &vlist, combiner, counters, &mut out);
        i = j;
    }
    out.finish()
}

/// Decode one `(key, values)` group, fold it through the combiner, and
/// push the folded records (same key bytes, new values) onto `out`.
fn combine_group<K, V, C>(
    kbytes: &[u8],
    vlist: &[&[u8]],
    combiner: &mut C,
    counters: &mut Counters,
    out: &mut RunBuilder,
) where
    K: SortableKey,
    V: Writable,
    C: Combiner<K = K, V = V>,
{
    let mut kslice = kbytes;
    let key = K::decode_ordered(&mut kslice).expect("combiner key round-trip");
    let values: Vec<V> =
        vlist.iter().map(|b| V::from_bytes(b).expect("combiner value round-trip")).collect();
    counters.incr_task(TaskCounter::CombineInputRecords, values.len() as u64);
    let mut folded = Vec::new();
    combiner.combine(&key, values, &mut folded);
    counters.incr_task(TaskCounter::CombineOutputRecords, folded.len() as u64);
    for v in folded {
        out.push_value(kbytes, &v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sums counts per word — the WordCount combiner.
    struct SumCombiner;
    impl Combiner for SumCombiner {
        type K = String;
        type V = u64;
        fn combine(&mut self, _k: &String, values: Vec<u64>, out: &mut Vec<u64>) {
            out.push(values.into_iter().sum());
        }
    }

    type NoC = crate::api::NoCombiner<String, u64>;

    fn collect_all(
        buf: &mut SortBuffer<String, u64>,
        pairs: &[(&str, u64)],
        counters: &mut Counters,
    ) {
        for (k, v) in pairs {
            buf.collect::<NoC>(&k.to_string(), v, None, counters);
        }
    }

    #[test]
    fn single_partition_sorts_by_key() {
        let mut counters = Counters::new();
        let mut buf: SortBuffer<String, u64> = SortBuffer::new(1, usize::MAX >> 1);
        collect_all(
            &mut buf,
            &[("pear", 1), ("apple", 2), ("mango", 3), ("apple", 4)],
            &mut counters,
        );
        let out = buf.finish::<NoC>(None, &mut counters);
        let keys: Vec<String> = out.partitions[0]
            .iter()
            .map(|(k, _)| {
                let mut s = k;
                String::decode_ordered(&mut s).unwrap()
            })
            .collect();
        assert_eq!(keys, vec!["apple", "apple", "mango", "pear"]);
        assert_eq!(out.num_spills, 1);
        assert_eq!(out.total_records(), 4);
    }

    #[test]
    fn equal_keys_keep_collect_order() {
        // The index sort tiebreaks on arena offset, so equal keys come
        // out in arrival order — the stability Hadoop's stable sort gives.
        let mut counters = Counters::new();
        let mut buf: SortBuffer<String, u64> = SortBuffer::new(1, usize::MAX >> 1);
        collect_all(&mut buf, &[("k", 3), ("k", 1), ("k", 2)], &mut counters);
        let out = buf.finish::<NoC>(None, &mut counters);
        let values: Vec<u64> =
            out.partitions[0].iter().map(|(_, v)| u64::from_bytes(v).unwrap()).collect();
        assert_eq!(values, vec![3, 1, 2]);
    }

    #[test]
    fn partitioning_is_stable_and_complete() {
        let mut counters = Counters::new();
        let mut buf: SortBuffer<String, u64> = SortBuffer::new(4, usize::MAX >> 1);
        let pairs: Vec<(String, u64)> = (0..100).map(|i| (format!("key{i}"), i as u64)).collect();
        for (k, v) in &pairs {
            buf.collect::<NoC>(k, v, None, &mut counters);
        }
        let out = buf.finish::<NoC>(None, &mut counters);
        assert_eq!(out.partitions.len(), 4);
        assert_eq!(out.total_records(), 100);
        // Each partition's run is sorted by raw key bytes.
        for p in &out.partitions {
            let keys: Vec<&[u8]> = (0..p.len()).map(|i| p.key(i)).collect();
            assert!(keys.windows(2).all(|w| w[0] <= w[1]), "each partition sorted");
        }
    }

    #[test]
    fn combiner_folds_at_spill_time() {
        let mut counters = Counters::new();
        let mut buf: SortBuffer<String, u64> = SortBuffer::new(1, usize::MAX >> 1);
        for _ in 0..1000 {
            buf.collect(&"the".to_string(), &1, Some(&mut SumCombiner), &mut counters);
        }
        let out = buf.finish(Some(&mut SumCombiner), &mut counters);
        assert_eq!(out.partitions[0].len(), 1, "1000 pairs folded to 1");
        let (_, v) = out.partitions[0].get(0);
        assert_eq!(u64::from_bytes(v).unwrap(), 1000);
        assert_eq!(counters.task(TaskCounter::CombineInputRecords), 1000);
        assert_eq!(counters.task(TaskCounter::CombineOutputRecords), 1);
    }

    #[test]
    fn small_buffer_forces_multiple_spills_and_merge() {
        let mut counters = Counters::new();
        let mut buf: SortBuffer<String, u64> = SortBuffer::new(2, 256);
        let words = ["alpha", "beta", "gamma", "delta"];
        for i in 0..200u64 {
            let w = words[(i % 4) as usize].to_string();
            buf.collect(&w, &1, Some(&mut SumCombiner), &mut counters);
        }
        let out = buf.finish(Some(&mut SumCombiner), &mut counters);
        assert!(out.num_spills > 1, "256-byte buffer must spill repeatedly");
        assert!(out.spill_bytes_read > 0, "merge re-reads spills");
        // After the final combine pass each word appears exactly once with
        // its total count.
        let mut totals = std::collections::BTreeMap::new();
        for p in &out.partitions {
            for (k, v) in p.iter() {
                let mut ks = k;
                let key = String::decode_ordered(&mut ks).unwrap();
                *totals.entry(key).or_insert(0u64) += u64::from_bytes(v).unwrap();
            }
        }
        for w in words {
            assert_eq!(totals[w], 50, "{w}");
        }
        // With a working final-merge combine, each word is a single record.
        assert_eq!(out.total_records(), 4);
    }

    #[test]
    fn without_combiner_all_records_survive_spills() {
        let mut counters = Counters::new();
        let mut buf: SortBuffer<String, u64> = SortBuffer::new(1, 128);
        for i in 0..100u64 {
            buf.collect::<NoC>(&"k".to_string(), &i, None, &mut counters);
        }
        let out = buf.finish::<NoC>(None, &mut counters);
        assert_eq!(out.total_records(), 100);
        let values: std::collections::BTreeSet<u64> =
            out.partitions[0].iter().map(|(_, v)| u64::from_bytes(v).unwrap()).collect();
        assert_eq!(values.len(), 100, "no values lost or duplicated");
    }

    #[test]
    fn peak_buffer_tracks_high_water() {
        let mut counters = Counters::new();
        let mut buf: SortBuffer<String, u64> = SortBuffer::new(1, 10_000);
        collect_all(&mut buf, &[("aaaa", 1), ("bbbb", 2)], &mut counters);
        let peak = buf.peak_buffered;
        assert!(peak > 0);
        buf.spill::<NoC>(None, &mut counters);
        collect_all(&mut buf, &[("c", 3)], &mut counters);
        assert_eq!(buf.peak_buffered, peak, "smaller second fill keeps old peak");
    }

    #[test]
    fn spilled_records_counter_counts_every_spill_pass() {
        let mut counters = Counters::new();
        let mut buf: SortBuffer<String, u64> = SortBuffer::new(1, usize::MAX >> 1);
        collect_all(&mut buf, &[("a", 1), ("b", 2)], &mut counters);
        let _ = buf.finish::<NoC>(None, &mut counters);
        assert_eq!(counters.task(TaskCounter::SpilledRecords), 2);
    }

    #[test]
    fn sorted_run_clone_shares_arena() {
        let run = SortedRun::from_pairs(vec![
            (b"b".to_vec(), b"2".to_vec()),
            (b"a".to_vec(), b"1".to_vec()),
        ]);
        let dup = run.clone();
        assert_eq!(run.to_pairs(), dup.to_pairs());
        assert_eq!(run.get(0).0, b"a");
        assert!(Arc::ptr_eq(&run.arena, &dup.arena), "clone must not copy bytes");
        assert_eq!(run.bytes(), 4);
    }

    #[test]
    fn run_builder_roundtrip() {
        let mut b = RunBuilder::new();
        b.push_raw(b"aa", b"xyz");
        b.push_value(b"bb", &7u64);
        let run = b.finish();
        assert_eq!(run.len(), 2);
        assert_eq!(run.get(0), (&b"aa"[..], &b"xyz"[..]));
        let (k, v) = run.get(1);
        assert_eq!(k, b"bb");
        assert_eq!(u64::from_bytes(v).unwrap(), 7);
        assert_eq!(run.bytes(), 5 + 2 + v.len() as u64);
    }
}
