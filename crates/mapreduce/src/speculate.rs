//! Speculative execution as a first-class subsystem.
//!
//! Hadoop 1.x's JobTracker watches each running attempt's *progress
//! rate* through TaskTracker heartbeats and, once free slots appear and
//! a task's estimated finish runs far past the pack, launches a second
//! attempt of it on a different node — the LATE insight that on a
//! heterogeneous cluster "slow relative to the median" beats "slow in
//! absolute terms". This module is the policy half: the [`Speculator`]
//! estimates and proposes; the engine validates every proposal (exactly
//! as it validates scheduler assignments), executes it, and settles the
//! race. Accounting is closed by construction:
//!
//! ```text
//! spec.launched == spec.won + spec.lost + spec.killed
//! ```
//!
//! * **won** — the speculative attempt finished first; the primary is
//!   killed at that instant and its whole runtime is wasted work;
//! * **killed** — the primary finished first; the speculative attempt is
//!   killed at the primary's commit, wasting its partial runtime;
//! * **lost** — the speculative attempt itself died (injected failure,
//!   OOM) before either could win.
//!
//! The wasted side of each outcome accumulates in `spec.wasted_us` — the
//! cost-model price of insurance that the TPCx-HS ablation (EXPERIMENTS
//! C5) weighs against the makespan it buys.

use std::collections::BTreeSet;

use hl_common::prelude::*;
use hl_common::writable::{read_vu64, write_vu64, Writable};

use crate::job::JobConf;

/// Completed primary attempts needed before the estimator trusts its
/// median (Hadoop waits for a similar warm-up before speculating).
pub const MIN_COMPLETED: usize = 3;

/// How a finished speculative attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecOutcome {
    /// Finished before the primary: the primary was killed.
    Won,
    /// Died on its own (failure injection, OOM) — no race to settle.
    Lost,
    /// The primary committed first: this attempt was killed.
    Killed,
}

impl SpecOutcome {
    fn tag(self) -> u64 {
        match self {
            SpecOutcome::Won => 0,
            SpecOutcome::Lost => 1,
            SpecOutcome::Killed => 2,
        }
    }
}

/// One settled speculative attempt — the per-task attempt record the job
/// report carries (and traces serialize).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecAttempt {
    /// Task index within its phase.
    pub task: u32,
    /// True for a reduce attempt, false for a map attempt.
    pub reduce: bool,
    /// Node the speculative attempt ran on.
    pub node: u32,
    /// When the speculative attempt launched.
    pub start: SimTime,
    /// When the race settled (win: this attempt's commit; killed: the
    /// primary's commit; lost: when the failure burned out).
    pub end: SimTime,
    /// Who won the race.
    pub outcome: SpecOutcome,
}

impl Writable for SpecAttempt {
    fn write(&self, buf: &mut Vec<u8>) {
        write_vu64(u64::from(self.task), buf);
        write_vu64(u64::from(self.reduce), buf);
        write_vu64(u64::from(self.node), buf);
        write_vu64(self.start.0, buf);
        write_vu64(self.end.0, buf);
        write_vu64(self.outcome.tag(), buf);
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        let narrow = |v: u64, what: &str| {
            u32::try_from(v).map_err(|_| HlError::Codec(format!("SpecAttempt {what} {v} > u32")))
        };
        let task = narrow(read_vu64(buf)?, "task")?;
        let reduce = read_vu64(buf)? != 0;
        let node = narrow(read_vu64(buf)?, "node")?;
        let start = SimTime(read_vu64(buf)?);
        let end = SimTime(read_vu64(buf)?);
        let outcome = match read_vu64(buf)? {
            0 => SpecOutcome::Won,
            1 => SpecOutcome::Lost,
            2 => SpecOutcome::Killed,
            t => return Err(HlError::Codec(format!("SpecAttempt outcome tag {t}"))),
        };
        Ok(SpecAttempt { task, reduce, node, start, end, outcome })
    }
}

/// One primary attempt still running at a decision instant, as the
/// JobTracker sees it through heartbeat reports.
#[derive(Debug, Clone, Copy)]
pub struct RunningTask {
    /// Task index within its phase.
    pub task: u32,
    /// Node the primary attempt runs on.
    pub node: NodeId,
    /// When the primary attempt started.
    pub start: SimTime,
    /// Last-reported progress in basis points (1..10 000), quantized to
    /// the heartbeat boundary it arrived on.
    pub progress_bp: u32,
}

/// The late-binding speculation policy: progress-rate estimation over
/// heartbeats plus the `mapred.speculative.*` thresholds.
#[derive(Debug, Clone)]
pub struct Speculator {
    threshold_pct: u32,
    cap_pct: u32,
    heartbeat: SimDuration,
}

impl Speculator {
    /// A speculator tuned by a job's `mapred.speculative.*` settings.
    pub fn from_conf(conf: &JobConf) -> Self {
        Speculator {
            threshold_pct: conf.spec_slowtask_pct.max(100),
            cap_pct: conf.spec_cap_pct,
            heartbeat: SimDuration(conf.spec_heartbeat.0.max(1)),
        }
    }

    /// Most speculative attempts one phase of `total_tasks` may launch.
    pub fn cap(&self, total_tasks: usize) -> usize {
        let pct = usize::try_from(self.cap_pct).unwrap_or(usize::MAX);
        (total_tasks.saturating_mul(pct) / 100).max(1)
    }

    /// The progress a tracker would have *reported* by `now` for an
    /// attempt spanning `start..end`: elapsed time rounded down to the
    /// last heartbeat boundary, as basis points of the true duration.
    /// `None` before the first heartbeat — the JobTracker can't estimate
    /// a rate from zero reports.
    pub fn observed_progress(&self, start: SimTime, end: SimTime, now: SimTime) -> Option<u32> {
        if now <= start || end <= start {
            return None;
        }
        let hb = self.heartbeat.0.max(1);
        let elapsed_q = (now.since(start).0 / hb) * hb;
        if elapsed_q == 0 {
            return None;
        }
        let total = end.since(start).0.max(1);
        let bp = u128::from(elapsed_q) * u128::from(BP) / u128::from(total);
        Some(u32::try_from(bp.clamp(1, u128::from(BP - 1))).unwrap_or(BP - 1))
    }

    /// Propose which running task (if any) to speculate on a slot that
    /// freed up on `slot_node` at `now`. LATE-style: estimate each
    /// running task's total duration from its reported progress rate,
    /// keep those beyond `threshold_pct` of the median completed
    /// duration whose estimated remaining time still exceeds a fresh
    /// median-length attempt, and pick the one finishing furthest out.
    pub fn propose(
        &self,
        now: SimTime,
        slot_node: NodeId,
        completed_us: &mut [u64],
        running: &[RunningTask],
        speculated: &BTreeSet<u32>,
    ) -> Option<u32> {
        if completed_us.len() < MIN_COMPLETED {
            return None;
        }
        completed_us.sort_unstable();
        let median = completed_us[completed_us.len() / 2].max(1);
        let threshold = median.saturating_mul(u64::from(self.threshold_pct)) / 100;
        // (estimated finish, task id): max finish, min id on ties.
        let mut best: Option<(u64, u32)> = None;
        for r in running {
            if r.node == slot_node || speculated.contains(&r.task) || r.progress_bp == 0 {
                continue;
            }
            let elapsed = now.since(r.start).0;
            let est_total =
                u64::try_from(u128::from(elapsed) * u128::from(BP) / u128::from(r.progress_bp))
                    .unwrap_or(u64::MAX);
            if est_total <= threshold {
                continue;
            }
            let est_finish = r.start.0.saturating_add(est_total);
            // Not worth it if a fresh attempt (≈ median) can't beat the
            // primary's remaining time.
            if est_finish.saturating_sub(now.0) <= median {
                continue;
            }
            let better = match best {
                None => true,
                Some((f, t)) => est_finish > f || (est_finish == f && r.task < t),
            };
            if better {
                best = Some((est_finish, r.task));
            }
        }
        best.map(|(_, t)| t)
    }
}

/// Basis points of a whole (progress and multiplier denominators).
const BP: u32 = 10_000;

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> Speculator {
        Speculator::from_conf(&JobConf::new("t"))
    }

    #[test]
    fn spec_attempt_round_trips() {
        for outcome in [SpecOutcome::Won, SpecOutcome::Lost, SpecOutcome::Killed] {
            let a = SpecAttempt {
                task: 7,
                reduce: outcome == SpecOutcome::Killed,
                node: 3,
                start: SimTime(1_000_000),
                end: SimTime(9_500_000),
                outcome,
            };
            assert_eq!(SpecAttempt::from_bytes(&a.to_bytes()).unwrap(), a);
        }
        assert!(SpecAttempt::from_bytes(&[0, 0, 0, 0, 0, 9]).is_err(), "unknown outcome tag");
    }

    #[test]
    fn progress_is_heartbeat_quantized() {
        let s = spec(); // 3 s heartbeat
        let start = SimTime::ZERO;
        let end = SimTime(30_000_000); // a 30 s task
        assert_eq!(s.observed_progress(start, end, SimTime(2_999_999)), None, "no report yet");
        // 4 s in, the last report was at 3 s → 10% of 30 s.
        assert_eq!(s.observed_progress(start, end, SimTime(4_000_000)), Some(1_000));
        // Reported progress never reaches 100% while the task runs.
        assert_eq!(s.observed_progress(start, end, SimTime(29_999_999)), Some(9_000));
    }

    #[test]
    fn propose_picks_the_straggler_beyond_threshold() {
        let s = spec();
        let now = SimTime(10_000_000);
        let mut completed = vec![2_000_000, 2_100_000, 1_900_000];
        // Started at 0, ~10 s elapsed with 20% progress → est 50 s total.
        let straggler =
            RunningTask { task: 5, node: NodeId(3), start: SimTime::ZERO, progress_bp: 2_000 };
        // On pace with the median: not a candidate.
        let on_pace =
            RunningTask { task: 6, node: NodeId(2), start: SimTime(9_000_000), progress_bp: 5_000 };
        let running = [straggler, on_pace];
        assert_eq!(s.propose(now, NodeId(0), &mut completed, &running, &BTreeSet::new()), Some(5));
        // Same node as the primary: refuse.
        assert_eq!(s.propose(now, NodeId(3), &mut completed, &[straggler], &BTreeSet::new()), None);
        // Already speculated: refuse.
        let done: BTreeSet<u32> = [5].into_iter().collect();
        assert_eq!(s.propose(now, NodeId(0), &mut completed, &[straggler], &done), None);
        // Too few completed tasks to trust a median: refuse.
        let mut thin = vec![2_000_000, 2_000_000];
        assert_eq!(s.propose(now, NodeId(0), &mut thin, &[straggler], &BTreeSet::new()), None);
    }

    #[test]
    fn cap_scales_with_phase_size_and_floors_at_one() {
        let s = spec(); // 10% cap
        assert_eq!(s.cap(1), 1);
        assert_eq!(s.cap(9), 1);
        assert_eq!(s.cap(50), 5);
    }
}
