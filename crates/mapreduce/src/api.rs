//! The user-facing MapReduce programming API.
//!
//! Jobs are typed end-to-end: a [`Mapper`] emits `(KOut, VOut)` pairs whose
//! key implements [`SortableKey`] (so the engine sorts serialized bytes
//! without deserializing — Hadoop's RawComparator trick), a [`Combiner`]
//! optionally folds map output locally, and a [`Reducer`] sees each key
//! once with all its values.
//!
//! Mappers and reducers are *stateful per task* (`&mut self`) with
//! `setup`/`cleanup` hooks — this is what makes both the in-mapper
//! combining pattern from Lin's "Monoidify!" lecture and the cached
//! side-file object from assignment 1 expressible.

use std::collections::BTreeMap;
use std::sync::Arc;

use hl_common::counters::{Counters, TaskCounter};
use hl_common::keys::SortableKey;
use hl_common::prelude::*;
use hl_common::writable::Writable;

/// A map function over text input (Hadoop's `TextInputFormat`: byte offset
/// + line).
pub trait Mapper: Send {
    /// Intermediate key type.
    type KOut: SortableKey;
    /// Intermediate value type.
    type VOut: Writable;

    /// Called once per task before any input.
    fn setup(&mut self, _ctx: &mut MapContext<Self::KOut, Self::VOut>) {}

    /// Called once per input record.
    fn map(&mut self, offset: u64, line: &str, ctx: &mut MapContext<Self::KOut, Self::VOut>);

    /// Called once per task after all input.
    fn cleanup(&mut self, _ctx: &mut MapContext<Self::KOut, Self::VOut>) {}
}

/// A reduce function.
pub trait Reducer: Send {
    /// Intermediate key type (must match the mapper's `KOut`).
    type KIn: SortableKey;
    /// Intermediate value type (must match the mapper's `VOut`).
    type VIn: Writable;

    /// Called once per task before any group.
    fn setup(&mut self, _ctx: &mut ReduceContext) {}

    /// Called once per distinct key with every value for that key.
    fn reduce(&mut self, key: Self::KIn, values: Vec<Self::VIn>, ctx: &mut ReduceContext);

    /// Called once per task after all groups.
    fn cleanup(&mut self, _ctx: &mut ReduceContext) {}
}

/// A local fold of map output — same key/value types in and out, run at
/// every spill and at merge time. Semantically it must be associative and
/// commutative over values ("monoidify!").
pub trait Combiner: Send {
    /// Key type.
    type K: SortableKey;
    /// Value type.
    type V: Writable;

    /// Fold `values` for `key` into (usually fewer) output values.
    fn combine(&mut self, key: &Self::K, values: Vec<Self::V>, out: &mut Vec<Self::V>);
}

/// Side files a task may read (the movie-genre / song-album lookup files).
///
/// Bytes are preloaded by the engine; every `read` *charges* virtual time
/// as if the file were re-read from storage, so the naive
/// read-inside-`map()` pattern costs what it cost the students.
#[derive(Debug, Clone, Default)]
pub struct SideFiles {
    files: BTreeMap<String, Arc<Vec<u8>>>,
}

impl SideFiles {
    /// No side files.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a side file's bytes under its path.
    pub fn insert(&mut self, path: &str, bytes: Vec<u8>) {
        self.files.insert(path.to_string(), Arc::new(bytes));
    }

    /// Paths registered.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    fn get(&self, path: &str) -> Result<Arc<Vec<u8>>> {
        self.files
            .get(path)
            .cloned()
            .ok_or_else(|| HlError::FileNotFound(format!("side file {path}")))
    }
}

/// Per-access open cost of a side file: the NameNode RPC + DataNode
/// connection setup a 2013 HDFS open paid. This, multiplied by millions of
/// records, is what turned the naive read-inside-`map()` pattern into
/// hours.
pub const SIDE_ACCESS_LATENCY: SimDuration = SimDuration::from_millis(2);

/// I/O accounting shared by both contexts: counters plus the *extra*
/// virtual CPU/IO time the task incurred beyond the engine's base charges
/// (side-file reads, declared per-record compute).
#[derive(Debug, Default)]
pub struct TaskScope {
    /// Task-local counters, merged into the job on completion.
    pub counters: Counters,
    /// Extra virtual time accrued by explicit charges.
    pub extra_time: SimDuration,
    side: SideFiles,
    /// Bandwidth used to charge side-file reads (the node's disk).
    pub side_read_bw: u64,
}

impl TaskScope {
    /// New scope over the given side files.
    pub fn new(side: SideFiles, side_read_bw: u64) -> Self {
        TaskScope { counters: Counters::new(), extra_time: SimDuration::ZERO, side, side_read_bw }
    }

    /// Read a side file, charging one full pass over it. Calling this from
    /// `map()` per record is the classic assignment-1 mistake; calling it
    /// from `setup()` is the fix.
    pub fn read_side_file(&mut self, path: &str) -> Result<Arc<Vec<u8>>> {
        let bytes = self.side.get(path)?;
        self.extra_time += SIDE_ACCESS_LATENCY
            + SimDuration::for_transfer(bytes.len() as u64, self.side_read_bw.max(1));
        self.counters.incr("Side Files", "reads", 1);
        self.counters.incr("Side Files", "bytes read", bytes.len() as u64);
        Ok(bytes)
    }

    /// Charge additional virtual compute time (e.g. an expensive model
    /// evaluation per record).
    pub fn charge_compute(&mut self, d: SimDuration) {
        self.extra_time += d;
    }
}

/// Context handed to [`Mapper`] methods: collects typed output.
pub struct MapContext<'a, K: SortableKey, V: Writable> {
    /// Counters / side files / charges.
    pub scope: &'a mut TaskScope,
    pub(crate) out: &'a mut dyn MapOutputSink<K, V>,
}

/// A custom partitioner: `(key, ordered key bytes, num_partitions) ->
/// partition`. The default is hash partitioning; range partitioners (the
/// total-order-sort lecture trick) are the classic custom one.
pub type PartitionFn<K> = Arc<dyn Fn(&K, &[u8], usize) -> usize + Send + Sync>;

/// Where map output goes (the sort buffer in the engine, a plain vec in
/// unit tests).
pub trait MapOutputSink<K: SortableKey, V: Writable> {
    /// Accept one pair.
    fn collect(&mut self, key: K, value: V);
}

impl<K: SortableKey, V: Writable> MapOutputSink<K, V> for Vec<(K, V)> {
    fn collect(&mut self, key: K, value: V) {
        self.push((key, value));
    }
}

impl<'a, K: SortableKey, V: Writable> MapContext<'a, K, V> {
    /// Build a context over a sink (engine or test).
    pub fn new(scope: &'a mut TaskScope, out: &'a mut dyn MapOutputSink<K, V>) -> Self {
        MapContext { scope, out }
    }

    /// Emit one intermediate pair.
    pub fn emit(&mut self, key: K, value: V) {
        self.scope.counters.incr_task(TaskCounter::MapOutputRecords, 1);
        self.out.collect(key, value);
    }

    /// Increment a user counter.
    pub fn incr_counter(&mut self, group: &str, name: &str, delta: u64) {
        self.scope.counters.incr(group, name, delta);
    }

    /// Read a side file (charged; see [`TaskScope::read_side_file`]).
    pub fn read_side_file(&mut self, path: &str) -> Result<Arc<Vec<u8>>> {
        self.scope.read_side_file(path)
    }
}

/// Context handed to [`Reducer`] methods: collects final text output
/// (Hadoop's `TextOutputFormat`: `key \t value` lines).
pub struct ReduceContext<'a> {
    /// Counters / side files / charges.
    pub scope: &'a mut TaskScope,
    pub(crate) lines: &'a mut Vec<String>,
}

impl<'a> ReduceContext<'a> {
    /// Build a context writing lines into `lines`.
    pub fn new(scope: &'a mut TaskScope, lines: &'a mut Vec<String>) -> Self {
        ReduceContext { scope, lines }
    }

    /// Emit one output record as `key \t value`.
    pub fn emit(&mut self, key: impl std::fmt::Display, value: impl std::fmt::Display) {
        self.scope.counters.incr_task(TaskCounter::ReduceOutputRecords, 1);
        self.lines.push(format!("{key}\t{value}"));
    }

    /// Increment a user counter.
    pub fn incr_counter(&mut self, group: &str, name: &str, delta: u64) {
        self.scope.counters.incr(group, name, delta);
    }

    /// Read a side file (charged).
    pub fn read_side_file(&mut self, path: &str) -> Result<Arc<Vec<u8>>> {
        self.scope.read_side_file(path)
    }
}

/// The identity combiner — useful default when none is configured.
pub struct NoCombiner<K, V>(std::marker::PhantomData<fn() -> (K, V)>);

impl<K, V> Default for NoCombiner<K, V> {
    fn default() -> Self {
        NoCombiner(std::marker::PhantomData)
    }
}

impl<K: SortableKey + Send, V: Writable + Send> Combiner for NoCombiner<K, V> {
    type K = K;
    type V = V;
    fn combine(&mut self, _key: &K, values: Vec<V>, out: &mut Vec<V>) {
        out.extend(values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TokenCounter;
    impl Mapper for TokenCounter {
        type KOut = String;
        type VOut = u64;
        fn map(&mut self, _off: u64, line: &str, ctx: &mut MapContext<String, u64>) {
            for tok in line.split_whitespace() {
                ctx.emit(tok.to_string(), 1);
            }
        }
    }

    #[test]
    fn mapper_emits_through_context() {
        let mut scope = TaskScope::new(SideFiles::new(), 1);
        let mut sink: Vec<(String, u64)> = Vec::new();
        let mut ctx = MapContext::new(&mut scope, &mut sink);
        TokenCounter.map(0, "a b a", &mut ctx);
        assert_eq!(sink, vec![("a".into(), 1), ("b".into(), 1), ("a".into(), 1)]);
        assert_eq!(scope.counters.task(TaskCounter::MapOutputRecords), 3);
    }

    #[test]
    fn side_file_reads_are_charged_per_call() {
        let mut side = SideFiles::new();
        side.insert("/cache/movies.dat", vec![0u8; 1_000_000]);
        let mut scope = TaskScope::new(side, 1_000_000); // 1 MB/s
        let per_read = SIDE_ACCESS_LATENCY + SimDuration::from_secs(1);
        scope.read_side_file("/cache/movies.dat").unwrap();
        assert_eq!(scope.extra_time, per_read);
        scope.read_side_file("/cache/movies.dat").unwrap();
        assert_eq!(scope.extra_time, per_read * 2, "naive re-reads stack up");
        assert_eq!(scope.counters.get("Side Files", "reads"), 2);
        assert!(scope.read_side_file("/missing").is_err());
    }

    #[test]
    fn reduce_context_formats_text_output() {
        let mut scope = TaskScope::new(SideFiles::new(), 1);
        let mut lines = Vec::new();
        let mut ctx = ReduceContext::new(&mut scope, &mut lines);
        ctx.emit("UA", 12.5);
        ctx.emit("DL", -3);
        assert_eq!(lines, vec!["UA\t12.5", "DL\t-3"]);
        assert_eq!(scope.counters.task(TaskCounter::ReduceOutputRecords), 2);
    }

    #[test]
    fn no_combiner_passes_values_through() {
        let mut c: NoCombiner<String, u64> = NoCombiner::default();
        let mut out = Vec::new();
        c.combine(&"k".to_string(), vec![1, 2, 3], &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn charge_compute_accumulates() {
        let mut scope = TaskScope::new(SideFiles::new(), 1);
        scope.charge_compute(SimDuration::from_millis(5));
        scope.charge_compute(SimDuration::from_millis(7));
        assert_eq!(scope.extra_time, SimDuration::from_millis(12));
    }
}
