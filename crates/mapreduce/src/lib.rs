//! # hl-mapreduce
//!
//! A from-scratch MapReduce 1.x engine over [`hl_dfs`] — the programming
//! model half of the course's two-sided design ("the programming API
//! libraries to support developing MapReduce programs and the middle
//! infrastructure to support automated large scale data management and
//! parallel execution").
//!
//! * [`api`] — the `Mapper` / `Reducer` / `Combiner` traits and emit
//!   contexts, including the side-file access path whose naive vs cached
//!   usage is the course's order-of-magnitude lesson;
//! * [`job`] — `JobConf` and the typed `Job` bundle students submit;
//! * [`split`] — block-aligned input splits with replica locations;
//! * [`sortbuf`] — the map-side collect/sort/spill buffer (combiner runs
//!   at each spill, exactly like Hadoop);
//! * [`merge`] — k-way merge of sorted runs with key grouping;
//! * [`engine`] — `MrCluster`: TaskTracker slots, locality-aware
//!   JobTracker scheduling, the shuffle, speculative execution, task
//!   retries, and virtual-time accounting;
//! * [`scheduler`] — the pluggable `Scheduler` trait with FIFO, Fair,
//!   and Capacity policies (Hadoop's multi-tenant evolution);
//! * [`speculate`] — LATE-style speculative execution policy: progress
//!   rates over heartbeats, late-binding launch thresholds, and closed
//!   won/lost/killed accounting;
//! * [`local`] — the `LocalJobRunner` (assignment 1's "serial Java
//!   commands without any HDFS support"), with an optional rayon-parallel
//!   mode;
//! * [`report`] — the job report and "JobTracker web UI" rendering the
//!   combiner lecture has students read.
//!
//! Real user code runs over real bytes — outputs are checked in tests —
//! while I/O, network, and JVM-startup time are charged to the virtual
//! clock of the owning [`hl_cluster`] simulation.

#![warn(missing_docs)]

pub mod api;
pub mod engine;
pub mod history;
pub mod job;
pub mod local;
pub mod merge;
pub mod report;
pub mod scheduler;
pub mod sortbuf;
pub mod speculate;
pub mod split;

pub use api::{Combiner, MapContext, Mapper, ReduceContext, Reducer};
pub use engine::MrCluster;
pub use job::{Job, JobConf};
pub use report::JobReport;
pub use scheduler::{
    scheduler_from_config, Assignment, CapacityScheduler, FairScheduler, FifoScheduler, JobView,
    PoolSpec, Preemption, QueueSpec, Scheduler, SchedulerEnv, SlotState, UniformEnv,
};
pub use speculate::{SpecAttempt, SpecOutcome, Speculator};
