//! K-way merge of sorted serialized runs, with equal-key grouping.
//!
//! Used twice, as in Hadoop: on the map side to merge spill files, and on
//! the reduce side to merge the sorted segments fetched from every map
//! task. Comparison is raw-byte (`memcmp`) — keys use order-preserving
//! encodings, so this is both the cheapest and the correct comparison.
//!
//! The merge is a tournament tree over run cursors (Hadoop's
//! `Merger.MergeQueue` plays the same game): each pop replays exactly one
//! leaf-to-root path of ⌈log₂ k⌉ comparisons on **borrowed key slices** —
//! no per-record key copies, no heap node churn. Ties go to the
//! lowest-numbered run, so group values keep run order then intra-run
//! order, which students observe as deterministic reducer input.

use crate::sortbuf::SortedRun;

/// Marks an empty leaf in a tournament tree padded to a power of two.
const NO_RUN: u32 = u32::MAX;

/// Streaming record-level merge: yields `(key, value)` slices in
/// ascending key order, borrowing from the input runs.
pub struct MergeIter<'a> {
    runs: &'a [SortedRun],
    /// Next unread record index per run.
    pos: Vec<usize>,
    /// Cached current key slice per run (`None` when exhausted), so
    /// replays compare without re-deriving slices from run cursors.
    heads: Vec<Option<&'a [u8]>>,
    /// Leaf count, `runs.len()` padded up to a power of two (min 1).
    leaves: usize,
    /// Winner tree as a 1-based array: `tree[1]` is the champion,
    /// `tree[leaves + r]` is leaf `r`. Internal nodes hold the run index
    /// winning that sub-tournament.
    tree: Vec<u32>,
}

impl<'a> MergeIter<'a> {
    /// Build the tournament over `runs`.
    pub fn new(runs: &'a [SortedRun]) -> Self {
        let leaves = runs.len().next_power_of_two().max(1);
        let mut tree = vec![NO_RUN; 2 * leaves];
        for r in 0..runs.len() {
            tree[leaves + r] = r as u32;
        }
        let heads =
            runs.iter().map(|run| if run.is_empty() { None } else { Some(run.key(0)) }).collect();
        let mut it = MergeIter { runs, pos: vec![0; runs.len()], heads, leaves, tree };
        for n in (1..leaves).rev() {
            it.tree[n] = it.play(it.tree[2 * n], it.tree[2 * n + 1]);
        }
        it
    }

    /// Current key of run `r`, or `None` when exhausted / empty leaf.
    #[inline]
    fn key_at(&self, r: u32) -> Option<&'a [u8]> {
        if r == NO_RUN {
            None
        } else {
            self.heads[r as usize]
        }
    }

    /// Winner of one match: smaller key wins, exhausted runs lose, ties
    /// go to the lower run index (left operand — left subtrees hold
    /// lower-numbered leaves).
    #[inline]
    fn play(&self, a: u32, b: u32) -> u32 {
        match (self.key_at(a), self.key_at(b)) {
            (Some(ka), Some(kb)) => {
                if ka <= kb {
                    a
                } else {
                    b
                }
            }
            (Some(_), None) => a,
            (None, _) => b,
        }
    }
}

impl<'a> Iterator for MergeIter<'a> {
    type Item = (&'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        let w = self.tree[1];
        self.key_at(w)?;
        let r = w as usize;
        let item = self.runs[r].get(self.pos[r]);
        self.pos[r] += 1;
        self.heads[r] = if self.pos[r] < self.runs[r].len() {
            let k = self.runs[r].key(self.pos[r]);
            debug_assert!(k >= item.0, "run {r} not sorted");
            Some(k)
        } else {
            None
        };
        // Replay only the path from this run's leaf to the root.
        let mut n = self.leaves + r;
        while n > 1 {
            n /= 2;
            self.tree[n] = self.play(self.tree[2 * n], self.tree[2 * n + 1]);
        }
        Some(item)
    }
}

/// Streaming group-level merge: yields `(key, values)` with all values
/// for one key gathered, still borrowing from the runs.
pub struct GroupIter<'a> {
    inner: MergeIter<'a>,
    pending: Option<(&'a [u8], &'a [u8])>,
}

impl<'a> Iterator for GroupIter<'a> {
    type Item = (&'a [u8], Vec<&'a [u8]>);

    fn next(&mut self) -> Option<Self::Item> {
        let (k, v) = match self.pending.take() {
            Some(kv) => kv,
            None => self.inner.next()?,
        };
        let mut values = vec![v];
        for (k2, v2) in self.inner.by_ref() {
            if k2 == k {
                values.push(v2);
            } else {
                self.pending = Some((k2, v2));
                break;
            }
        }
        Some((k, values))
    }
}

/// Record-level streaming merge of `runs`.
pub fn merge_iter(runs: &[SortedRun]) -> MergeIter<'_> {
    MergeIter::new(runs)
}

/// Group-level streaming merge of `runs` (reducer input order).
pub fn merge_groups(runs: &[SortedRun]) -> GroupIter<'_> {
    GroupIter { inner: MergeIter::new(runs), pending: None }
}

/// Collect the streaming merge into owned `(key, values)` groups.
/// Convenience for tests and small runners; hot paths iterate
/// [`merge_groups`] directly.
pub fn merge_runs(runs: &[SortedRun]) -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
    merge_groups(runs)
        .map(|(k, vs)| (k.to_vec(), vs.into_iter().map(<[u8]>::to_vec).collect()))
        .collect()
}

/// Total serialized bytes of a set of runs (charging helper).
pub fn runs_bytes(runs: &[SortedRun]) -> u64 {
    runs.iter().map(SortedRun::bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_common::keys::SortableKey;

    fn run(pairs: &[(&str, u64)]) -> SortedRun {
        SortedRun::from_pairs(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string().ordered_bytes(), v.to_be_bytes().to_vec()))
                .collect(),
        )
    }

    fn key(bytes: &[u8]) -> String {
        let mut s = bytes;
        String::decode_ordered(&mut s).unwrap()
    }

    #[test]
    fn merges_and_groups() {
        let merged = merge_runs(&[
            run(&[("apple", 1), ("mango", 2)]),
            run(&[("apple", 3), ("pear", 4)]),
            run(&[("mango", 5)]),
        ]);
        let keys: Vec<String> = merged.iter().map(|(k, _)| key(k)).collect();
        assert_eq!(keys, vec!["apple", "mango", "pear"]);
        assert_eq!(merged[0].1.len(), 2);
        assert_eq!(merged[1].1.len(), 2);
        assert_eq!(merged[2].1.len(), 1);
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_runs(&[]).is_empty());
        assert!(merge_runs(&[SortedRun::default(), SortedRun::default()]).is_empty());
        let one = merge_runs(&[run(&[("a", 1)]), SortedRun::default()]);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn group_values_keep_run_order() {
        let merged = merge_runs(&[run(&[("k", 10)]), run(&[("k", 20)]), run(&[("k", 30)])]);
        let values: Vec<u64> = merged[0]
            .1
            .iter()
            .map(|v| u64::from_be_bytes(v.as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(values, vec![10, 20, 30]);
    }

    #[test]
    fn equal_keys_within_one_run_stay_contiguous() {
        // Repeated keys inside a single run must drain before a later run
        // with the same key contributes — run order, then intra-run order.
        let merged = merge_runs(&[run(&[("k", 1), ("k", 2)]), run(&[("k", 3), ("k", 4)])]);
        let values: Vec<u64> = merged[0]
            .1
            .iter()
            .map(|v| u64::from_be_bytes(v.as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(values, vec![1, 2, 3, 4]);
    }

    #[test]
    fn non_power_of_two_run_counts() {
        for nruns in 1usize..=9 {
            let runs: Vec<SortedRun> =
                (0..nruns).map(|r| run(&[("a", r as u64), ("z", 100 + r as u64)])).collect();
            let merged = merge_runs(&runs);
            assert_eq!(merged.len(), 2, "{nruns} runs");
            assert_eq!(merged[0].1.len(), nruns);
            // Run-order tiebreak: values ascend with run index.
            let firsts: Vec<u64> = merged[0]
                .1
                .iter()
                .map(|v| u64::from_be_bytes(v.as_slice().try_into().unwrap()))
                .collect();
            assert_eq!(firsts, (0..nruns as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn streaming_iter_matches_collected() {
        let runs = vec![run(&[("b", 2), ("d", 4)]), run(&[("a", 1), ("c", 3)])];
        let streamed: Vec<(Vec<u8>, Vec<u8>)> =
            merge_iter(&runs).map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        let collected: Vec<(Vec<u8>, Vec<u8>)> = merge_runs(&runs)
            .into_iter()
            .flat_map(|(k, vs)| vs.into_iter().map(move |v| (k.clone(), v)))
            .collect();
        assert_eq!(streamed, collected);
        assert!(streamed.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn merge_equals_global_sort() {
        // Split a shuffled set into runs, sort each, merge, and compare to
        // a global sort.
        let all: Vec<(String, u64)> =
            (0..300).map(|i| (format!("k{:03}", (i * 7) % 100), i as u64)).collect();
        let mut raw: Vec<Vec<(Vec<u8>, Vec<u8>)>> = vec![Vec::new(); 5];
        for (i, (k, v)) in all.iter().enumerate() {
            raw[i % 5].push((k.clone().ordered_bytes(), v.to_be_bytes().to_vec()));
        }
        let runs: Vec<SortedRun> = raw.into_iter().map(SortedRun::from_pairs).collect();
        let merged = merge_runs(&runs);
        assert_eq!(merged.len(), 100);
        let mut total = 0;
        for w in merged.windows(2) {
            assert!(w[0].0 < w[1].0, "keys strictly ascending across groups");
        }
        for (_, vs) in &merged {
            total += vs.len();
        }
        assert_eq!(total, 300);
    }

    #[test]
    fn runs_bytes_counts_serialized_size() {
        let r = run(&[("ab", 1)]);
        // "ab" + terminator = 3 bytes key, 8 bytes value.
        assert_eq!(runs_bytes(&[r]), 11);
        assert_eq!(runs_bytes(&[]), 0);
    }

    proptest::proptest! {
        #[test]
        fn prop_merge_preserves_multiset(
            data in proptest::collection::vec(("[a-e]{1,3}", 0u64..100), 0..120),
            nruns in 1usize..6,
        ) {
            let mut raw: Vec<Vec<(Vec<u8>, Vec<u8>)>> = vec![Vec::new(); nruns];
            for (i, (k, v)) in data.iter().enumerate() {
                raw[i % nruns].push((k.clone().ordered_bytes(), v.to_be_bytes().to_vec()));
            }
            let runs: Vec<SortedRun> = raw.into_iter().map(SortedRun::from_pairs).collect();
            let merged = merge_runs(&runs);
            // Flatten back and compare as multisets.
            let mut flat: Vec<(String, u64)> = merged
                .iter()
                .flat_map(|(k, vs)| {
                    let ks = key(k);
                    vs.iter()
                        .map(move |v| (ks.clone(), u64::from_be_bytes(v.as_slice().try_into().unwrap())))
                })
                .collect();
            let mut expected = data.clone();
            flat.sort();
            expected.sort();
            proptest::prop_assert_eq!(flat, expected);
        }
    }
}
