//! K-way merge of sorted serialized runs, with equal-key grouping.
//!
//! Used twice, as in Hadoop: on the map side to merge spill files, and on
//! the reduce side to merge the sorted segments fetched from every map
//! task. Comparison is raw-byte (`memcmp`) — keys use order-preserving
//! encodings, so this is both the cheapest and the correct comparison.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::sortbuf::SortedRun;

/// Merge sorted runs into `(key, values)` groups, keys ascending; within a
/// group, values keep run order then intra-run order (stable like Hadoop's
/// merge, which students observe as deterministic reducer input).
pub fn merge_runs(runs: Vec<SortedRun>) -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
    let mut iters: Vec<std::vec::IntoIter<(Vec<u8>, Vec<u8>)>> =
        runs.into_iter().map(|r| r.into_iter()).collect();

    // Heap of Reverse((key, run_idx)); pop order = smallest key, then run.
    let mut heap: BinaryHeap<Reverse<(Vec<u8>, usize, Vec<u8>)>> = BinaryHeap::new();
    for (i, it) in iters.iter_mut().enumerate() {
        if let Some((k, v)) = it.next() {
            heap.push(Reverse((k, i, v)));
        }
    }

    let mut out: Vec<(Vec<u8>, Vec<Vec<u8>>)> = Vec::new();
    while let Some(Reverse((k, i, v))) = heap.pop() {
        if let Some((k2, v2)) = iters[i].next() {
            debug_assert!(k2 >= k, "run {i} not sorted");
            heap.push(Reverse((k2, i, v2)));
        }
        match out.last_mut() {
            Some((gk, vs)) if *gk == k => vs.push(v),
            _ => out.push((k, vec![v])),
        }
    }
    out
}

/// Total serialized bytes of a set of runs (charging helper).
pub fn runs_bytes(runs: &[SortedRun]) -> u64 {
    runs.iter()
        .flatten()
        .map(|(k, v)| (k.len() + v.len()) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_common::keys::SortableKey;

    fn run(pairs: &[(&str, u64)]) -> SortedRun {
        let mut r: SortedRun = pairs
            .iter()
            .map(|(k, v)| (k.to_string().ordered_bytes(), v.to_be_bytes().to_vec()))
            .collect();
        r.sort();
        r
    }

    fn key(bytes: &[u8]) -> String {
        let mut s = bytes;
        String::decode_ordered(&mut s).unwrap()
    }

    #[test]
    fn merges_and_groups() {
        let merged = merge_runs(vec![
            run(&[("apple", 1), ("mango", 2)]),
            run(&[("apple", 3), ("pear", 4)]),
            run(&[("mango", 5)]),
        ]);
        let keys: Vec<String> = merged.iter().map(|(k, _)| key(k)).collect();
        assert_eq!(keys, vec!["apple", "mango", "pear"]);
        assert_eq!(merged[0].1.len(), 2);
        assert_eq!(merged[1].1.len(), 2);
        assert_eq!(merged[2].1.len(), 1);
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_runs(vec![]).is_empty());
        assert!(merge_runs(vec![vec![], vec![]]).is_empty());
        let one = merge_runs(vec![run(&[("a", 1)]), vec![]]);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn group_values_keep_run_order() {
        let merged = merge_runs(vec![
            run(&[("k", 10)]),
            run(&[("k", 20)]),
            run(&[("k", 30)]),
        ]);
        let values: Vec<u64> = merged[0]
            .1
            .iter()
            .map(|v| u64::from_be_bytes(v.as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(values, vec![10, 20, 30]);
    }

    #[test]
    fn merge_equals_global_sort() {
        // Split a shuffled set into runs, sort each, merge, and compare to
        // a global sort.
        let all: Vec<(String, u64)> =
            (0..300).map(|i| (format!("k{:03}", (i * 7) % 100), i as u64)).collect();
        let mut runs: Vec<SortedRun> = vec![Vec::new(); 5];
        for (i, (k, v)) in all.iter().enumerate() {
            runs[i % 5].push((k.clone().ordered_bytes(), v.to_be_bytes().to_vec()));
        }
        for r in &mut runs {
            r.sort();
        }
        let merged = merge_runs(runs);
        assert_eq!(merged.len(), 100);
        let mut total = 0;
        for w in merged.windows(2) {
            assert!(w[0].0 < w[1].0, "keys strictly ascending across groups");
        }
        for (_, vs) in &merged {
            total += vs.len();
        }
        assert_eq!(total, 300);
    }

    #[test]
    fn runs_bytes_counts_serialized_size() {
        let r = run(&[("ab", 1)]);
        // "ab" + terminator = 3 bytes key, 8 bytes value.
        assert_eq!(runs_bytes(&[r]), 11);
        assert_eq!(runs_bytes(&[]), 0);
    }

    proptest::proptest! {
        #[test]
        fn prop_merge_preserves_multiset(
            data in proptest::collection::vec(("[a-e]{1,3}", 0u64..100), 0..120),
            nruns in 1usize..6,
        ) {
            let mut runs: Vec<SortedRun> = vec![Vec::new(); nruns];
            for (i, (k, v)) in data.iter().enumerate() {
                runs[i % nruns].push((k.clone().ordered_bytes(), v.to_be_bytes().to_vec()));
            }
            for r in &mut runs { r.sort(); }
            let merged = merge_runs(runs);
            // Flatten back and compare as multisets.
            let mut flat: Vec<(String, u64)> = merged
                .iter()
                .flat_map(|(k, vs)| {
                    let ks = key(k);
                    vs.iter()
                        .map(move |v| (ks.clone(), u64::from_be_bytes(v.as_slice().try_into().unwrap())))
                })
                .collect();
            let mut expected = data.clone();
            flat.sort();
            expected.sort();
            proptest::prop_assert_eq!(flat, expected);
        }
    }
}
