//! Job configuration and the typed job bundle.
//!
//! `JobConf` mirrors the knobs the course actually turned: input/output
//! paths, the number of reduces, whether a combiner is attached, whether
//! speculative execution runs, retry limits — plus the cost-model
//! coefficients that let the virtual clock reflect a job's real compute
//! weight, and fault-injection switches used by the Version-1 meltdown
//! drill.

use std::sync::Arc;

use hl_common::prelude::*;

use crate::api::{Combiner, Mapper, PartitionFn, Reducer};

/// Per-job configuration.
#[derive(Debug, Clone)]
pub struct JobConf {
    /// Job name (shows in reports: `job_0007 (wordcount)`).
    pub name: String,
    /// DFS input paths (files; directories expand to their files).
    pub input_paths: Vec<String>,
    /// DFS output directory (created by the job; must not exist).
    pub output_path: String,
    /// Number of reduce tasks.
    pub num_reduces: usize,
    /// Map-side sort buffer size in bytes (`io.sort.mb`).
    pub sort_buffer_bytes: usize,
    /// Speculative execution of straggler maps (master switch: off, no
    /// task of any kind is speculated).
    pub speculative: bool,
    /// Speculative execution of straggler reduces (additionally gated on
    /// `speculative`, like Hadoop's separate map/reduce switches).
    pub speculative_reduces: bool,
    /// Launch threshold: speculate a running task once its estimated
    /// total duration exceeds this percent of the median completed one.
    pub spec_slowtask_pct: u32,
    /// Cap on speculative attempts per phase, percent of the phase's
    /// tasks (floor 1).
    pub spec_cap_pct: u32,
    /// Heartbeat quantum for progress reports feeding the estimator.
    pub spec_heartbeat: SimDuration,
    /// Attempts per task before the job fails (Hadoop default 4).
    pub max_attempts: u32,
    /// Virtual CPU charge per map input byte (parsing).
    pub map_cpu_per_byte: SimDuration,
    /// Virtual CPU charge per map *call* (the map function body).
    pub map_cpu_per_record: SimDuration,
    /// Virtual CPU charge per reduce input record.
    pub reduce_cpu_per_record: SimDuration,
    /// Virtual CPU charge per combiner input record (the "increased map
    /// task run time" half of the combiner trade-off).
    pub combine_cpu_per_record: SimDuration,
    /// JVM spawn cost per task attempt (Hadoop 1.x: ~1 s).
    pub task_startup: SimDuration,
    /// Fault injection: this job's tasks leak daemon heap (the Version-1
    /// students' buggy submissions).
    pub leaks_memory: bool,
    /// Fault injection: the first `n` attempts of every task fail.
    pub fail_first_attempts: u32,
    /// Submitting user (multi-tenant scheduling identity).
    pub user: String,
    /// Fair-scheduler pool / Capacity-scheduler queue this job bills to.
    pub pool: String,
    /// Scheduling priority; larger runs earlier within a policy's
    /// tie-breaks (Hadoop's `mapred.job.priority`).
    pub priority: u32,
    /// Compress map output before it hits the spill disk and the shuffle
    /// wire (`mapred.compress.map.output`). Sorted runs themselves are
    /// untouched, so job output is byte-identical either way.
    pub compress_map_output: bool,
    /// Codec for compressed map output
    /// (`mapred.output.compression.codec`).
    pub map_output_codec: hl_codec::CodecId,
}

impl JobConf {
    /// A named job with course-calibrated defaults: 100 MB sort buffer,
    /// ~80 MB/s map parse throughput, 2 µs/record map body, 1 µs/record
    /// reduce, 1 s JVM startup, speculative on, 4 attempts.
    pub fn new(name: impl Into<String>) -> Self {
        JobConf {
            name: name.into(),
            input_paths: Vec::new(),
            output_path: String::new(),
            num_reduces: 1,
            sort_buffer_bytes: 100 * 1024 * 1024,
            speculative: true,
            speculative_reduces: true,
            spec_slowtask_pct: 150,
            spec_cap_pct: 10,
            spec_heartbeat: SimDuration::from_secs(3),
            max_attempts: 4,
            map_cpu_per_byte: SimDuration::from_micros(1) / 80, // ~80 MB/s
            map_cpu_per_record: SimDuration::from_micros(2),
            reduce_cpu_per_record: SimDuration::from_micros(1),
            combine_cpu_per_record: SimDuration::from_micros(2),
            task_startup: SimDuration::from_secs(1),
            leaks_memory: false,
            fail_first_attempts: 0,
            user: "student".to_string(),
            pool: "default".to_string(),
            priority: 0,
            compress_map_output: false,
            map_output_codec: hl_codec::CodecId::Hlz,
        }
    }

    /// A named job whose mapred knobs come from a cluster
    /// [`Configuration`] — the `mapred-site.xml` path: reduce count,
    /// speculative execution, attempt limit, and the map-side sort
    /// buffer (`io.sort.bytes`) override the course defaults; malformed
    /// values are a config error at job-build time, not mid-run.
    pub fn from_configuration(name: impl Into<String>, conf: &Configuration) -> Result<Self> {
        use hl_common::config::keys;
        let mut jc = JobConf::new(name);
        jc.num_reduces = conf.get_usize(keys::MAPRED_REDUCE_TASKS, jc.num_reduces)?.max(1);
        jc.speculative = conf.get_bool(keys::MAPRED_SPECULATIVE, jc.speculative)?;
        jc.speculative_reduces =
            conf.get_bool(keys::MAPRED_REDUCE_SPECULATIVE, jc.speculative_reduces)?;
        jc.spec_slowtask_pct =
            conf.get_u32(keys::MAPRED_SPECULATIVE_SLOWTASK_PCT, jc.spec_slowtask_pct)?.max(100);
        jc.spec_cap_pct = conf.get_u32(keys::MAPRED_SPECULATIVE_CAP_PCT, jc.spec_cap_pct)?;
        jc.spec_heartbeat = SimDuration::from_secs(
            conf.get_u64(keys::MAPRED_SPECULATIVE_HEARTBEAT_SECS, 3)?.max(1),
        );
        jc.max_attempts = conf.get_u32(keys::MAPRED_MAX_ATTEMPTS, jc.max_attempts)?;
        jc.sort_buffer_bytes = conf.get_usize(keys::IO_SORT_BYTES, jc.sort_buffer_bytes)?.max(1024);
        jc.compress_map_output =
            conf.get_bool(keys::MAPRED_COMPRESS_MAP_OUTPUT, jc.compress_map_output)?;
        jc.map_output_codec =
            hl_codec::CodecId::parse(conf.get_or(keys::MAPRED_OUTPUT_COMPRESSION_CODEC, "hlz"))?;
        Ok(jc)
    }

    /// Add an input path.
    pub fn input(mut self, path: impl Into<String>) -> Self {
        self.input_paths.push(path.into());
        self
    }

    /// Set the output directory.
    pub fn output(mut self, path: impl Into<String>) -> Self {
        self.output_path = path.into();
        self
    }

    /// Set the reduce count.
    pub fn reduces(mut self, n: usize) -> Self {
        self.num_reduces = n.max(1);
        self
    }

    /// Toggle speculative execution.
    pub fn speculative(mut self, on: bool) -> Self {
        self.speculative = on;
        self
    }

    /// Toggle speculative execution of reduces (also gated on the master
    /// `speculative` switch).
    pub fn speculative_reduces(mut self, on: bool) -> Self {
        self.speculative_reduces = on;
        self
    }

    /// Set the per-map-call CPU charge (heavier user code).
    pub fn map_cpu_per_record(mut self, d: SimDuration) -> Self {
        self.map_cpu_per_record = d;
        self
    }

    /// Set the sort buffer size.
    pub fn sort_buffer(mut self, bytes: usize) -> Self {
        self.sort_buffer_bytes = bytes.max(1024);
        self
    }

    /// Mark this job's tasks as heap-leaking (fault injection).
    pub fn leaking(mut self, on: bool) -> Self {
        self.leaks_memory = on;
        self
    }

    /// Make the first `n` attempts of every task fail (fault injection).
    pub fn fail_first_attempts(mut self, n: u32) -> Self {
        self.fail_first_attempts = n;
        self
    }

    /// Set the submitting user.
    pub fn user(mut self, name: impl Into<String>) -> Self {
        self.user = name.into();
        self
    }

    /// Set the scheduler pool / queue.
    pub fn pool(mut self, name: impl Into<String>) -> Self {
        self.pool = name.into();
        self
    }

    /// Set the scheduling priority (larger runs earlier).
    pub fn priority(mut self, p: u32) -> Self {
        self.priority = p;
        self
    }

    /// Toggle map-output compression (spill files and shuffle transfer).
    pub fn compress_map_output(mut self, on: bool) -> Self {
        self.compress_map_output = on;
        self
    }

    /// Set the map-output codec (only consulted when compression is on).
    pub fn map_output_codec(mut self, codec: hl_codec::CodecId) -> Self {
        self.map_output_codec = codec;
        self
    }

    /// Validate before submission.
    pub fn validate(&self) -> Result<()> {
        if self.input_paths.is_empty() {
            return Err(HlError::Config(format!("job {}: no input paths", self.name)));
        }
        if self.output_path.is_empty() {
            return Err(HlError::Config(format!("job {}: no output path", self.name)));
        }
        if self.num_reduces == 0 {
            return Err(HlError::Config(format!("job {}: zero reduces", self.name)));
        }
        Ok(())
    }
}

/// Factory closure producing a fresh (stateful) task instance.
pub type Factory<T> = Arc<dyn Fn() -> T + Send + Sync>;

/// A complete typed job: configuration plus mapper/reducer/combiner
/// factories. Factories run once per task attempt, so task state
/// (in-mapper combining tables, cached side files) is per-attempt.
pub struct Job<M, R, C>
where
    M: Mapper,
    R: Reducer<KIn = M::KOut, VIn = M::VOut>,
    C: Combiner<K = M::KOut, V = M::VOut>,
{
    /// Configuration.
    pub conf: JobConf,
    /// Mapper factory.
    pub mapper: Factory<M>,
    /// Reducer factory.
    pub reducer: Factory<R>,
    /// Optional combiner factory.
    pub combiner: Option<Factory<C>>,
    /// Optional custom partitioner (default: hash of the key bytes).
    pub partitioner: Option<PartitionFn<M::KOut>>,
}

impl<M, R, C> Job<M, R, C>
where
    M: Mapper,
    R: Reducer<KIn = M::KOut, VIn = M::VOut>,
    C: Combiner<K = M::KOut, V = M::VOut>,
{
    /// Build a job with a combiner.
    pub fn with_combiner(
        conf: JobConf,
        mapper: impl Fn() -> M + Send + Sync + 'static,
        reducer: impl Fn() -> R + Send + Sync + 'static,
        combiner: impl Fn() -> C + Send + Sync + 'static,
    ) -> Self {
        Job {
            conf,
            mapper: Arc::new(mapper),
            reducer: Arc::new(reducer),
            combiner: Some(Arc::new(combiner)),
            partitioner: None,
        }
    }

    /// Install a custom partitioner (e.g. a range partitioner for
    /// total-order output).
    pub fn partitioned_by(
        mut self,
        f: impl Fn(&M::KOut, &[u8], usize) -> usize + Send + Sync + 'static,
    ) -> Self {
        self.partitioner = Some(Arc::new(f));
        self
    }
}

impl<M, R> Job<M, R, crate::api::NoCombiner<M::KOut, M::VOut>>
where
    M: Mapper,
    R: Reducer<KIn = M::KOut, VIn = M::VOut>,
    M::KOut: Send,
    M::VOut: Send,
{
    /// Build a job without a combiner.
    pub fn new(
        conf: JobConf,
        mapper: impl Fn() -> M + Send + Sync + 'static,
        reducer: impl Fn() -> R + Send + Sync + 'static,
    ) -> Self {
        Job {
            conf,
            mapper: Arc::new(mapper),
            reducer: Arc::new(reducer),
            combiner: None,
            partitioner: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let conf = JobConf::new("wordcount")
            .input("/data/shakespeare.txt")
            .output("/out/wc")
            .reduces(4)
            .speculative(false)
            .sort_buffer(1 << 20);
        assert_eq!(conf.name, "wordcount");
        assert_eq!(conf.input_paths, vec!["/data/shakespeare.txt"]);
        assert_eq!(conf.output_path, "/out/wc");
        assert_eq!(conf.num_reduces, 4);
        assert!(!conf.speculative);
        assert_eq!(conf.sort_buffer_bytes, 1 << 20);
        conf.validate().unwrap();
    }

    #[test]
    fn validation_catches_missing_pieces() {
        assert!(JobConf::new("x").output("/o").validate().is_err());
        assert!(JobConf::new("x").input("/i").validate().is_err());
        assert!(JobConf::new("x").input("/i").output("/o").validate().is_ok());
    }

    #[test]
    fn reduces_clamps_to_one() {
        assert_eq!(JobConf::new("x").reduces(0).num_reduces, 1);
    }

    #[test]
    fn from_configuration_reads_mapred_keys() {
        use hl_common::config::keys;
        let mut site = Configuration::with_defaults();
        site.set(keys::MAPRED_REDUCE_TASKS, 6)
            .set(keys::MAPRED_SPECULATIVE, false)
            .set(keys::MAPRED_REDUCE_SPECULATIVE, false)
            .set(keys::MAPRED_SPECULATIVE_SLOWTASK_PCT, 200)
            .set(keys::MAPRED_SPECULATIVE_CAP_PCT, 25)
            .set(keys::MAPRED_SPECULATIVE_HEARTBEAT_SECS, 5)
            .set(keys::MAPRED_MAX_ATTEMPTS, 2)
            .set(keys::IO_SORT_BYTES, 1 << 20)
            .set(keys::MAPRED_COMPRESS_MAP_OUTPUT, true);
        let conf = JobConf::from_configuration("wc", &site).unwrap();
        assert_eq!(conf.num_reduces, 6);
        assert!(!conf.speculative);
        assert!(!conf.speculative_reduces);
        assert_eq!(conf.spec_slowtask_pct, 200);
        assert_eq!(conf.spec_cap_pct, 25);
        assert_eq!(conf.spec_heartbeat, SimDuration::from_secs(5));
        assert_eq!(conf.max_attempts, 2);
        assert_eq!(conf.sort_buffer_bytes, 1 << 20);
        assert!(conf.compress_map_output);
        assert_eq!(conf.map_output_codec, hl_codec::CodecId::Hlz);
        // Unset keys keep the course defaults; garbage is an error.
        let empty = JobConf::from_configuration("wc", &Configuration::new()).unwrap();
        assert_eq!(empty.num_reduces, 1);
        assert!(!empty.compress_map_output);
        let mut bad = Configuration::new();
        bad.set(keys::MAPRED_REDUCE_TASKS, "lots");
        assert!(JobConf::from_configuration("wc", &bad).is_err());
        let mut badcodec = Configuration::new();
        badcodec.set(keys::MAPRED_OUTPUT_COMPRESSION_CODEC, "snappy");
        assert!(JobConf::from_configuration("wc", &badcodec).is_err());
    }

    #[test]
    fn tenant_identity_builders() {
        let conf = JobConf::new("t").user("alice").pool("research").priority(2);
        assert_eq!(conf.user, "alice");
        assert_eq!(conf.pool, "research");
        assert_eq!(conf.priority, 2);
        let d = JobConf::new("d");
        assert_eq!((d.user.as_str(), d.pool.as_str(), d.priority), ("student", "default", 0));
    }

    #[test]
    fn defaults_are_hadoop_flavored() {
        let conf = JobConf::new("d");
        assert_eq!(conf.max_attempts, 4);
        assert!(conf.speculative);
        assert_eq!(conf.task_startup, SimDuration::from_secs(1));
        assert_eq!(conf.sort_buffer_bytes, 100 * 1024 * 1024);
    }
}
