//! `MrCluster`: the MRv1 execution engine over HDFS.
//!
//! The JobTracker/TaskTracker half of Figure 2. Jobs run with **real user
//! code over real bytes** while every I/O, network, and JVM-startup cost is
//! charged to the cluster's virtual clock:
//!
//! * map tasks are scheduled **locality-first** onto TaskTracker map slots
//!   (node-local > rack-local > off-rack), reading their block through the
//!   DFS client (which picks the closest replica and charges accordingly);
//! * map output flows through the [`crate::sortbuf`] spill pipeline with
//!   the job's combiner;
//! * reduces fetch their partition from every map's node (the shuffle),
//!   k-way merge, reduce, and write `part-r-NNNNN` files back to HDFS;
//! * failed attempts retry up to `max_attempts`; stragglers can be
//!   speculatively re-executed; heap-leaking jobs crash TaskTracker and
//!   DataNode daemons exactly as in the paper's Version-1 meltdown;
//! * submission is refused while the NameNode is in safe mode — the
//!   "corrupted Hadoop cluster that stopped all the new jobs".

use std::collections::{BTreeMap, BTreeSet};

use hl_cluster::failure::{DaemonHealth, DaemonKind};
use hl_cluster::network::ClusterNet;
use hl_cluster::node::{ClusterSpec, DegradeModel, HeterogeneousClusterSpec, PerfProfile};
use hl_cluster::trace::EventLog;
use hl_common::counters::{Counters, FileSystemCounter, TaskCounter};
use hl_common::keys::SortableKey;
use hl_common::prelude::*;
use hl_common::topology::Locality;
use hl_common::writable::Writable;
use hl_dfs::client::Dfs;
use hl_metrics::{MetricsRegistry, MetricsSnapshot};

use crate::api::{
    Combiner, MapContext, MapOutputSink, Mapper, ReduceContext, Reducer, SideFiles, TaskScope,
};
use crate::history::JobHistory;
use crate::job::Job;
use crate::merge::merge_groups;
use crate::report::{JobReport, TaskKind, TaskSummary};
use crate::scheduler::{
    scheduler_from_config, JobView, Scheduler, SchedulerEnv, SlotState, UniformEnv,
};
use crate::sortbuf::{MapOutput, SortBuffer};
use crate::speculate::{RunningTask, SpecAttempt, SpecOutcome, Speculator};
use crate::split::{compute_splits, InputSplit, LineReader};

/// One TaskTracker daemon.
#[derive(Debug, Clone)]
pub struct Tracker {
    /// Daemon health (heap-leak model inside).
    pub health: DaemonHealth,
    /// Concurrent map tasks this node runs.
    pub map_slots: usize,
    /// Concurrent reduce tasks this node runs.
    pub reduce_slots: usize,
}

// Slot bookkeeping is the scheduler's [`SlotState`]: where it is and when
// it frees up. The engine owns the vec; the scheduler only reads it.
type Slot = SlotState;

/// The cluster: DFS + network + MapReduce daemons + virtual clock.
pub struct MrCluster {
    /// The HDFS instance.
    pub dfs: Dfs,
    /// Bandwidth resources.
    pub net: ClusterNet,
    /// Hardware description.
    pub spec: ClusterSpec,
    /// Cluster configuration.
    pub config: Configuration,
    /// Virtual now (advances as jobs run).
    pub now: SimTime,
    /// Event log.
    pub log: EventLog,
    /// Distributed-cache side files (path → bytes), readable from tasks.
    pub side_files: SideFiles,
    trackers: BTreeMap<NodeId, Tracker>,
    /// JobTracker daemon health.
    pub jobtracker: DaemonHealth,
    /// Global blacklist strikes per tracker: how many *successful* jobs
    /// blacklisted it. At `mapred.max.tracker.blacklists` strikes the
    /// tracker stops receiving any tasks until an operator restart pass.
    blacklist_strikes: BTreeMap<NodeId, u32>,
    /// Failed attempts on one tracker before a job blacklists it.
    max_tracker_failures: u32,
    /// Per-job blacklistings before a tracker is blacklisted globally.
    max_tracker_blacklists: u32,
    next_job_id: u32,
    /// When false, the JobTracker assigns splits FIFO, ignoring block
    /// locations — the ablation arm of the Figure 2 locality experiment.
    pub locality_aware: bool,
    /// The JobTracker's history page (completed jobs).
    pub history: JobHistory,
    /// Jobs that failed outright this session.
    pub failed_jobs: u32,
    /// Instruments for the "jobtracker" daemon (job/task lifecycle,
    /// spill/shuffle/merge accounting, blacklist events).
    pub metrics: MetricsRegistry,
    /// The pluggable task-assignment policy (`mapred.jobtracker.scheduler`).
    scheduler: Box<dyn Scheduler>,
}

impl MrCluster {
    /// Stand up DFS + MapReduce daemons on every node of `spec`.
    pub fn new(spec: ClusterSpec, config: Configuration) -> Result<Self> {
        let dfs = Dfs::format(&config, &spec)?;
        let net = ClusterNet::new(&spec);
        let map_slots = config.get_usize(hl_common::config::keys::MAPRED_MAP_SLOTS, 8)?;
        let reduce_slots = config.get_usize(hl_common::config::keys::MAPRED_REDUCE_SLOTS, 4)?;
        let max_tracker_failures =
            config.get_u32(hl_common::config::keys::MAPRED_MAX_TRACKER_FAILURES, 4)?.max(1);
        let max_tracker_blacklists =
            config.get_u32(hl_common::config::keys::MAPRED_MAX_TRACKER_BLACKLISTS, 3)?.max(1);
        let scheduler = scheduler_from_config(&config)?;
        let trackers = spec
            .topology
            .nodes()
            .map(|n| {
                (
                    n,
                    Tracker {
                        health: DaemonHealth::new(DaemonKind::TaskTracker, n, SimTime::ZERO),
                        map_slots,
                        reduce_slots,
                    },
                )
            })
            .collect();
        Ok(MrCluster {
            dfs,
            net,
            jobtracker: DaemonHealth::new(DaemonKind::JobTracker, NodeId(0), SimTime::ZERO),
            spec,
            config,
            now: SimTime::ZERO,
            log: EventLog::new(),
            side_files: SideFiles::new(),
            trackers,
            blacklist_strikes: BTreeMap::new(),
            max_tracker_failures,
            max_tracker_blacklists,
            next_job_id: 1,
            locality_aware: true,
            history: JobHistory::default(),
            failed_jobs: 0,
            metrics: MetricsRegistry::new(),
            scheduler,
        })
    }

    /// Swap the task-assignment policy (tests/experiments; normal callers
    /// set `mapred.jobtracker.scheduler` in the config instead).
    pub fn set_scheduler(&mut self, scheduler: Box<dyn Scheduler>) {
        self.scheduler = scheduler;
    }

    /// Name of the active scheduling policy.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// The course's 8-node dedicated cluster with default config.
    pub fn course_default() -> Result<Self> {
        MrCluster::new(ClusterSpec::course_hadoop(8), Configuration::with_defaults())
    }

    /// Stand up a cluster whose nodes carry the spec's performance
    /// models: throttled-VM tiers, noisy neighbors, progressive
    /// stragglers. The models live in the network layer, so they slow
    /// CPU *and* disk *and* NIC charges — not just task durations.
    pub fn new_heterogeneous(
        spec: &HeterogeneousClusterSpec,
        config: Configuration,
    ) -> Result<Self> {
        let mut cluster = MrCluster::new(spec.base.clone(), config)?;
        for (node, model) in &spec.models {
            cluster.net.set_node_model(*node, model.clone());
        }
        Ok(cluster)
    }

    /// Mark `node` as a straggler: everything it does — CPU, local disk,
    /// NIC — runs `factor`× slower (a uniform static degrade profile).
    pub fn set_slow_node(&mut self, node: NodeId, factor: f64) {
        let bp = (f64::from(PerfProfile::NOMINAL_BP) / factor.max(1.0)).round().max(1.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let bp = bp as u32;
        self.net.set_node_model(node, DegradeModel::Static(PerfProfile::uniform(bp)));
    }

    /// Tracker state (tests/experiments).
    pub fn tracker(&self, node: NodeId) -> Option<&Tracker> {
        self.trackers.get(&node)
    }

    /// Mutable tracker state (fault injection tunes heap models).
    pub fn tracker_mut(&mut self, node: NodeId) -> Option<&mut Tracker> {
        self.trackers.get_mut(&node)
    }

    /// Kill one TaskTracker daemon outright (`kill -9` on the JVM): its
    /// slots leave the pool until a restart. The colocated DataNode is
    /// untouched — crash that separately via [`Dfs::crash_datanode`].
    /// Returns `false` when the tracker was already dead or unknown.
    ///
    /// [`Dfs::crash_datanode`]: hl_dfs::client::Dfs::crash_datanode
    pub fn crash_tracker(&mut self, node: NodeId) -> bool {
        match self.trackers.get_mut(&node) {
            Some(t) if t.health.alive => {
                t.health.alive = false;
                t.health.crashes += 1;
                self.metrics.incr("jobtracker", "trackers.crashed", 1);
                true
            }
            _ => false,
        }
    }

    /// Kill the JobTracker daemon; every submission fails with
    /// [`HlError::DaemonDown`] until [`MrCluster::restart_jobtracker`].
    pub fn crash_jobtracker(&mut self) {
        if self.jobtracker.alive {
            self.jobtracker.alive = false;
            self.jobtracker.crashes += 1;
            self.metrics.incr("jobtracker", "crashes", 1);
        }
    }

    /// Restart the JobTracker at the cluster's current virtual time.
    pub fn restart_jobtracker(&mut self) {
        let now = self.now;
        self.jobtracker.restart(now);
        // Gauges reset with the process; counters/histograms carry across.
        self.metrics.restart_daemon("jobtracker");
        self.metrics.incr("jobtracker", "restarts", 1);
    }

    /// Restart every dead TaskTracker (and its colocated DataNode daemon).
    /// The operator pass also wipes the global tracker blacklist: a
    /// restarted fleet starts with a clean bill of health, exactly like
    /// re-registering TaskTrackers on a real JobTracker.
    pub fn restart_dead_trackers(&mut self) {
        let now = self.now;
        let mut restarted = 0u64;
        for (node, t) in self.trackers.iter_mut() {
            if !t.health.alive {
                t.health.restart(now);
                restarted += 1;
                if let Some(dn) = self.dfs.datanode_mut(*node) {
                    dn.restart();
                }
            }
        }
        if restarted > 0 {
            self.metrics.incr("jobtracker", "trackers.restarted", restarted);
        }
        self.blacklist_strikes.clear();
    }

    /// Trackers currently blacklisted cluster-wide (enough per-job
    /// blacklistings that the JobTracker stopped scheduling on them).
    pub fn blacklisted_trackers(&self) -> Vec<NodeId> {
        self.blacklist_strikes
            .iter()
            .filter(|(_, &strikes)| strikes >= self.max_tracker_blacklists)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Global blacklist strikes recorded against `node`.
    pub fn tracker_strikes(&self, node: NodeId) -> u32 {
        self.blacklist_strikes.get(&node).copied().unwrap_or(0)
    }

    fn is_globally_blacklisted(&self, node: NodeId) -> bool {
        self.tracker_strikes(node) >= self.max_tracker_blacklists
    }

    /// Nodes with a live TaskTracker.
    pub fn live_tracker_nodes(&self) -> Vec<NodeId> {
        self.trackers.iter().filter(|(_, t)| t.health.alive).map(|(&n, _)| n).collect()
    }

    /// Register a side file for tasks to read (the distributed cache). If
    /// the path exists on DFS its real bytes are pulled; otherwise the
    /// bytes must be provided.
    pub fn register_side_file(&mut self, path: &str, bytes: Vec<u8>) {
        self.side_files.insert(path, bytes);
    }

    /// Pull a DFS file's bytes into the distributed cache (charged as one
    /// read at `now`).
    pub fn cache_from_dfs(&mut self, path: &str) -> Result<()> {
        let t = self.now;
        let data = self.dfs.read(&mut self.net, t, path, None)?;
        self.now = data.completed_at;
        self.side_files.insert(path, data.value);
        Ok(())
    }

    fn map_slots(&self) -> Vec<Slot> {
        let mut slots = Vec::new();
        for (&node, t) in &self.trackers {
            if t.health.alive && !self.is_globally_blacklisted(node) {
                for _ in 0..t.map_slots {
                    slots.push(Slot { node, free_at: self.now });
                }
            }
        }
        slots
    }

    fn reduce_slots(&self, not_before: SimTime) -> Vec<Slot> {
        let mut slots = Vec::new();
        for (&node, t) in &self.trackers {
            if t.health.alive && !self.is_globally_blacklisted(node) {
                for _ in 0..t.reduce_slots {
                    slots.push(Slot { node, free_at: not_before });
                }
            }
        }
        slots
    }

    /// Run a job to completion. Errors when submission is impossible
    /// (safe mode, dead JobTracker, bad conf, output exists) or when a
    /// task exhausts its attempts.
    pub fn run_job<M, R, C>(&mut self, job: &Job<M, R, C>) -> Result<JobReport>
    where
        M: Mapper,
        R: Reducer<KIn = M::KOut, VIn = M::VOut>,
        C: Combiner<K = M::KOut, V = M::VOut>,
    {
        job.conf.validate()?;
        if !self.jobtracker.alive {
            return Err(HlError::DaemonDown("jobtracker".into()));
        }
        if self.dfs.namenode.safemode.is_on() {
            let (r, e) = self.dfs.namenode.block_census();
            return Err(HlError::SafeMode(self.dfs.namenode.safemode.status(r, e)));
        }
        if self.dfs.namenode.namespace().exists(&job.conf.output_path) {
            return Err(HlError::AlreadyExists(job.conf.output_path.clone()));
        }
        let job_id = format!("job_{:04}", self.next_job_id);
        self.next_job_id += 1;
        self.metrics.incr("jobtracker", "jobs.submitted", 1);
        let submitted_at = self.now;
        self.log.log_with(submitted_at, "jobtracker", || {
            format!("{job_id} ({}) submitted", job.conf.name)
        });

        self.dfs.namenode.mkdirs(&job.conf.output_path)?;
        let splits = compute_splits(&self.dfs, &job.conf.input_paths)?;

        let result = self.run_phases(job, &job_id, submitted_at, splits);
        match result {
            Ok(report) => {
                self.now = report.finished_at;
                self.record_job_metrics(&report);
                self.history.record(&report);
                let (now, elapsed) = (self.now, report.elapsed());
                self.log.log_with(now, "jobtracker", || format!("{job_id} completed in {elapsed}"));
                Ok(report)
            }
            Err(e) => {
                // Failed jobs clean their output directory.
                self.failed_jobs += 1;
                self.metrics.incr("jobtracker", "jobs.failed", 1);
                let cmds =
                    self.dfs.namenode.delete(&job.conf.output_path, true).unwrap_or_default();
                let now = self.now;
                self.dfs.apply_commands(&mut self.net, now, &cmds);
                let now = self.now;
                self.log.log_with(now, "jobtracker", || format!("{job_id} FAILED: {e}"));
                Err(e)
            }
        }
    }

    /// Fold one completed job's report into the "jobtracker" instruments:
    /// spill/shuffle/merge byte counters from the job counters, per-kind
    /// task-duration histograms, and blacklist events.
    fn record_job_metrics(&mut self, report: &JobReport) {
        self.metrics.incr("jobtracker", "jobs.completed", 1);
        self.metrics.observe("jobtracker", "job.duration_ms", report.elapsed().as_micros() / 1000);
        self.metrics.incr(
            "jobtracker",
            "shuffle.bytes",
            report.counters.task(TaskCounter::ReduceShuffleBytes),
        );
        self.metrics.incr(
            "jobtracker",
            "spill.records",
            report.counters.task(TaskCounter::SpilledRecords),
        );
        let blacklisted = report.counters.get("Job Counters", "Trackers blacklisted");
        if blacklisted > 0 {
            self.metrics.incr("jobtracker", "blacklist.events", blacklisted);
        }
        for t in &report.tasks {
            let ms = t.duration().as_micros() / 1000;
            match t.kind {
                TaskKind::Map => self.metrics.observe("jobtracker", "map.duration_ms", ms),
                TaskKind::Reduce => self.metrics.observe("jobtracker", "reduce.duration_ms", ms),
            }
        }
    }

    /// One cluster-wide metrics snapshot at the engine's virtual `now`:
    /// DFS (NameNode + client + DataNodes) merged with the JobTracker's
    /// instruments and the network's per-link export.
    pub fn metrics_snapshot(&mut self) -> MetricsSnapshot {
        let at = self.now;
        self.net.export_metrics(at, &mut self.metrics);
        let live = i64::try_from(self.live_tracker_nodes().len()).unwrap_or(i64::MAX);
        let black = i64::try_from(self.blacklisted_trackers().len()).unwrap_or(i64::MAX);
        self.metrics.set_gauge("jobtracker", "trackers.live", live);
        self.metrics.set_gauge("jobtracker", "trackers.blacklisted", black);
        self.metrics.set_gauge("jobtracker", "up", i64::from(self.jobtracker.alive));
        let mut snap = self.dfs.metrics_snapshot(at);
        snap.merge(&self.metrics.snapshot(at));
        snap
    }

    fn run_phases<M, R, C>(
        &mut self,
        job: &Job<M, R, C>,
        job_id: &str,
        submitted_at: SimTime,
        splits: Vec<InputSplit>,
    ) -> Result<JobReport>
    where
        M: Mapper,
        R: Reducer<KIn = M::KOut, VIn = M::VOut>,
        C: Combiner<K = M::KOut, V = M::VOut>,
    {
        let mut counters = Counters::new();
        let mut tasks: Vec<TaskSummary> = Vec::new();
        let mut peak_buffer = 0usize;
        // Per-job tracker blacklist: a tracker that eats too many failed
        // attempts stops receiving this job's tasks. Each *successful* job
        // that blacklisted a tracker adds a global strike; enough strikes
        // and the JobTracker stops scheduling on it entirely.
        let mut job_failures: BTreeMap<NodeId, u32> = BTreeMap::new();
        let mut job_blacklist: Vec<NodeId> = Vec::new();

        // ------------------------------------------------------ map phase
        let mut slots = self.map_slots();
        if slots.is_empty() {
            return Err(HlError::DaemonDown("no live tasktrackers".into()));
        }
        let mut pending: Vec<u32> = (0..splits.len() as u32).collect();
        let mut outputs: Vec<Option<(NodeId, MapOutput, SimTime)>> = vec![None; splits.len()];
        // The policy sees splits only through their locality distance.
        let topo = self.net.topology().clone();
        let env = MapSchedEnv { topo: &topo, splits: &splits, locality_aware: self.locality_aware };

        while !pending.is_empty() {
            if slots.is_empty() {
                return Err(HlError::JobFailed(format!(
                    "{job_id}: every tasktracker died mid-job"
                )));
            }
            // One heartbeat round: the policy matches the earliest-free
            // slot with a task from the runnable job set (here: this job).
            let view = JobView {
                user: &job.conf.user,
                pool: &job.conf.pool,
                priority: job.conf.priority,
                submitted_at,
                pending: &pending,
                running: &[],
            };
            let decision = self.scheduler.next_assignment(submitted_at, &slots, &[view], &env);
            let assignment = match decision {
                Some(a) if a.job == 0 && a.slot < slots.len() && pending.contains(&a.task) => a,
                Some(_) => {
                    self.metrics.incr("jobtracker", "sched.invalid", 1);
                    return Err(HlError::JobFailed(format!(
                        "{job_id}: scheduler {} returned an invalid map assignment",
                        self.scheduler.name()
                    )));
                }
                None => {
                    self.metrics.incr("jobtracker", "sched.invalid", 1);
                    return Err(HlError::JobFailed(format!(
                        "{job_id}: scheduler {} stalled with {} pending map task(s)",
                        self.scheduler.name(),
                        pending.len()
                    )));
                }
            };
            self.metrics.incr("jobtracker", "sched.decisions", 1);
            let si = assignment.slot;
            let split_idx = assignment.task as usize;
            if let Some(pi) = pending.iter().position(|&t| t == assignment.task) {
                pending.swap_remove(pi);
            }
            let split = splits[split_idx].clone();

            let mut attempts = 0u32;
            let mut cur = si;
            loop {
                attempts += 1;
                let node = slots[cur].node;
                let start = slots[cur].free_at;
                match self.exec_map_attempt(job, &split, node, start, attempts) {
                    Ok(MapAttempt { output, end, locality, counters: task_counters, peak }) => {
                        counters.merge(&task_counters);
                        peak_buffer = peak_buffer.max(peak);
                        counters.incr("Job Counters", locality_counter(locality), 1);
                        tasks.push(TaskSummary {
                            id: split_idx as u32,
                            kind: TaskKind::Map,
                            node,
                            start,
                            end,
                            attempts,
                            locality: Some(locality),
                            speculative: false,
                        });
                        slots[cur].free_at = end;
                        outputs[split_idx] = Some((node, output, end));
                        break;
                    }
                    Err(e) => {
                        self.log.log_with(start, "jobtracker", || {
                            format!(
                                "{job_id} m_{split_idx:05} attempt {attempts} failed on {node}: {e}"
                            )
                        });
                        if attempts >= job.conf.max_attempts {
                            return Err(HlError::JobFailed(format!(
                                "{job_id}: task m_{split_idx:05} failed {attempts} attempts: {e}"
                            )));
                        }
                        // The failed attempt still burned startup + a bit.
                        let burn = job.conf.task_startup + SimDuration::from_secs(10);
                        slots[cur].free_at += burn;
                        // A crashed tracker takes its slots out of the pool;
                        // the retry migrates to the earliest remaining slot.
                        if !self.trackers[&node].health.alive {
                            slots.retain(|s| s.node != node);
                        }
                        // Blacklist the tracker for this job once it eats
                        // too many failed attempts (crashed or not).
                        let strikes = job_failures.entry(node).or_insert(0);
                        *strikes += 1;
                        if *strikes >= self.max_tracker_failures && !job_blacklist.contains(&node) {
                            job_blacklist.push(node);
                            counters.incr("Job Counters", "Trackers blacklisted", 1);
                            let n = *strikes;
                            self.log.log_with(start, "jobtracker", || {
                                format!(
                                    "{job_id} blacklisted tracker on {node} after {n} failed attempt(s)"
                                )
                            });
                            slots.retain(|s| s.node != node);
                        }
                        if slots.is_empty() {
                            return Err(HlError::JobFailed(format!(
                                "{job_id}: every tasktracker died mid-job"
                            )));
                        }
                        cur = (0..slots.len())
                            .min_by_key(|&i| (slots[i].free_at, slots[i].node.0))
                            .unwrap_or(0); // non-empty: checked just above
                    }
                }
            }
        }

        // -------------------------------------- speculative execution: maps
        //
        // The Speculator replays the JobTracker's heartbeat view: each time
        // a slot frees up, the tasks whose commits lie beyond that instant
        // are "still running", and their heartbeat-quantized progress rates
        // estimate a finish time. Proposals are validated exactly like
        // scheduler assignments — a bad one increments `spec.invalid` and
        // is refused (it never corrupts the job) — then raced for real,
        // with the loser's burned time charged to `spec.wasted_us`.
        let speculator = Speculator::from_conf(&job.conf);
        let mut spec_attempts: Vec<SpecAttempt> = Vec::new();
        if job.conf.speculative {
            // Primary attempt (node, start, end) per map task.
            let mut primaries: Vec<Option<(NodeId, SimTime, SimTime)>> = vec![None; splits.len()];
            for t in tasks.iter().filter(|t| t.kind == TaskKind::Map) {
                if let Some(p) = primaries.get_mut(t.id as usize) {
                    *p = Some((t.node, t.start, t.end));
                }
            }
            let cap = speculator.cap(splits.len());
            let mut speculated: BTreeSet<u32> = BTreeSet::new();
            // Visit slots in the order they free up (ties by node id) —
            // the late-binding part: the earliest idle slot gets first
            // pick of the stragglers.
            let mut order: Vec<usize> = (0..slots.len()).collect();
            order.sort_by_key(|&i| (slots[i].free_at, slots[i].node.0));
            for si in order {
                if speculated.len() >= cap {
                    break;
                }
                let node = slots[si].node;
                let now = slots[si].free_at;
                if !self.trackers.get(&node).is_some_and(|t| t.health.alive) {
                    continue;
                }
                let mut completed: Vec<u64> = primaries
                    .iter()
                    .flatten()
                    .filter(|(_, _, end)| *end <= now)
                    .map(|(_, start, end)| end.since(*start).0)
                    .collect();
                let running: Vec<RunningTask> = primaries
                    .iter()
                    .enumerate()
                    .filter_map(|(id, p)| p.map(|(n, s, e)| (id, n, s, e)))
                    .filter(|&(_, _, _, end)| end > now)
                    .map(|(id, n, s, e)| RunningTask {
                        task: u32::try_from(id).unwrap_or(u32::MAX),
                        node: n,
                        start: s,
                        progress_bp: speculator.observed_progress(s, e, now).unwrap_or(0),
                    })
                    .collect();
                let Some(task) =
                    speculator.propose(now, node, &mut completed, &running, &speculated)
                else {
                    continue;
                };
                // Validate the proposal like a scheduler decision before
                // acting on it: the task must still be running here and
                // now, on a different node, un-speculated.
                let valid = primaries.get(task as usize).copied().flatten().is_some_and(
                    |(p_node, _, p_end)| {
                        p_end > now && p_node != node && !speculated.contains(&task)
                    },
                );
                if !valid {
                    self.metrics.incr("jobtracker", "spec.invalid", 1);
                    continue;
                }
                // Checked valid just above, so the primary exists.
                let Some((p_node, p_start, p_end)) = primaries[task as usize] else {
                    continue;
                };
                speculated.insert(task);
                self.metrics.incr("jobtracker", "spec.launched", 1);
                match self.exec_map_attempt(job, &splits[task as usize], node, now, 1) {
                    Ok(attempt) if attempt.end < p_end => {
                        // The racer wins: kill the primary at this instant.
                        // Its whole runtime was wasted work, but its slot
                        // frees early — that's the makespan speculation buys.
                        self.metrics.incr("jobtracker", "spec.won", 1);
                        self.metrics.incr(
                            "jobtracker",
                            "spec.wasted_us",
                            attempt.end.since(p_start).0,
                        );
                        counters.incr("Job Counters", "Speculative map attempts won", 1);
                        if let Some(ps) =
                            slots.iter_mut().find(|s| s.node == p_node && s.free_at == p_end)
                        {
                            ps.free_at = attempt.end;
                        }
                        slots[si].free_at = attempt.end;
                        outputs[task as usize] = Some((node, attempt.output, attempt.end));
                        if let Some(summary) =
                            tasks.iter_mut().find(|t| t.kind == TaskKind::Map && t.id == task)
                        {
                            summary.node = node;
                            summary.start = now;
                            summary.end = attempt.end;
                            summary.speculative = true;
                        }
                        primaries[task as usize] = Some((node, now, attempt.end));
                        spec_attempts.push(SpecAttempt {
                            task,
                            reduce: false,
                            node: node.0,
                            start: now,
                            end: attempt.end,
                            outcome: SpecOutcome::Won,
                        });
                    }
                    Ok(_) => {
                        // The primary committed first: the racer is killed
                        // at that commit and everything it ran is waste.
                        self.metrics.incr("jobtracker", "spec.killed", 1);
                        self.metrics.incr("jobtracker", "spec.wasted_us", p_end.since(now).0);
                        slots[si].free_at = p_end;
                        spec_attempts.push(SpecAttempt {
                            task,
                            reduce: false,
                            node: node.0,
                            start: now,
                            end: p_end,
                            outcome: SpecOutcome::Killed,
                        });
                    }
                    Err(_) => {
                        // The racer died on its own (injected failure, OOM):
                        // no race to settle, just the burned startup.
                        let burn = job.conf.task_startup + SimDuration::from_secs(10);
                        self.metrics.incr("jobtracker", "spec.lost", 1);
                        self.metrics.incr("jobtracker", "spec.wasted_us", burn.0);
                        slots[si].free_at = now + burn;
                        spec_attempts.push(SpecAttempt {
                            task,
                            reduce: false,
                            node: node.0,
                            start: now,
                            end: now + burn,
                            outcome: SpecOutcome::Lost,
                        });
                    }
                }
            }
        }

        let maps_done =
            outputs.iter().flatten().map(|(_, _, end)| *end).max().unwrap_or(submitted_at);

        // --------------------------------------------------- reduce phase
        let num_reduces = job.conf.num_reduces;
        let mut reduce_slots = self.reduce_slots(maps_done);
        if reduce_slots.is_empty() {
            return Err(HlError::JobFailed(format!("{job_id}: no live tasktrackers for reduce")));
        }
        let mut output_files = Vec::new();
        let mut finished_at = maps_done;
        // Primary attempt (node, start, commit end, compute end) per reduce.
        let mut reduce_prim: Vec<Option<(NodeId, SimTime, SimTime, SimTime)>> =
            vec![None; num_reduces];

        let mut pending_reduces: Vec<u32> = (0..num_reduces as u32).collect();
        while !pending_reduces.is_empty() {
            // Reduces are locality-blind (their input is everywhere); the
            // policy still picks the slot and the next task.
            let view = JobView {
                user: &job.conf.user,
                pool: &job.conf.pool,
                priority: job.conf.priority,
                submitted_at,
                pending: &pending_reduces,
                running: &[],
            };
            let decision =
                self.scheduler.next_assignment(maps_done, &reduce_slots, &[view], &UniformEnv);
            let assignment = match decision {
                Some(a)
                    if a.job == 0
                        && a.slot < reduce_slots.len()
                        && pending_reduces.contains(&a.task) =>
                {
                    a
                }
                Some(_) => {
                    self.metrics.incr("jobtracker", "sched.invalid", 1);
                    return Err(HlError::JobFailed(format!(
                        "{job_id}: scheduler {} returned an invalid reduce assignment",
                        self.scheduler.name()
                    )));
                }
                None => {
                    self.metrics.incr("jobtracker", "sched.invalid", 1);
                    return Err(HlError::JobFailed(format!(
                        "{job_id}: scheduler {} stalled with {} pending reduce task(s)",
                        self.scheduler.name(),
                        pending_reduces.len()
                    )));
                }
            };
            self.metrics.incr("jobtracker", "sched.decisions", 1);
            let r = assignment.task as usize;
            if let Some(pi) = pending_reduces.iter().position(|&t| t == assignment.task) {
                pending_reduces.swap_remove(pi);
            }
            let mut si = assignment.slot;
            let mut attempts = 0u32;
            loop {
                attempts += 1;
                let node = reduce_slots[si].node;
                let start = reduce_slots[si].free_at;
                match self.exec_reduce_attempt(job, &outputs, r, node, start, true) {
                    Ok(ReduceAttempt { end, compute_end, counters: task_counters, out_path }) => {
                        counters.merge(&task_counters);
                        tasks.push(TaskSummary {
                            id: r as u32,
                            kind: TaskKind::Reduce,
                            node,
                            start,
                            end,
                            attempts,
                            locality: None,
                            speculative: false,
                        });
                        reduce_slots[si].free_at = end;
                        finished_at = finished_at.max(end);
                        reduce_prim[r] = Some((node, start, end, compute_end));
                        if let Some(p) = out_path {
                            output_files.push(p);
                        }
                        break;
                    }
                    Err(e) => {
                        if attempts >= job.conf.max_attempts {
                            return Err(HlError::JobFailed(format!(
                                "{job_id}: task r_{r:05} failed {attempts} attempts: {e}"
                            )));
                        }
                        reduce_slots[si].free_at += job.conf.task_startup;
                        // A crashed tracker takes its slots out of the pool;
                        // the retry migrates to the earliest remaining slot.
                        if !self.trackers[&node].health.alive {
                            reduce_slots.retain(|s| s.node != node);
                        }
                        let strikes = job_failures.entry(node).or_insert(0);
                        *strikes += 1;
                        if *strikes >= self.max_tracker_failures && !job_blacklist.contains(&node) {
                            job_blacklist.push(node);
                            counters.incr("Job Counters", "Trackers blacklisted", 1);
                            let n = *strikes;
                            self.log.log_with(start, "jobtracker", || {
                                format!(
                                    "{job_id} blacklisted tracker on {node} after {n} failed attempt(s)"
                                )
                            });
                            reduce_slots.retain(|s| s.node != node);
                        }
                        if reduce_slots.is_empty() {
                            return Err(HlError::JobFailed(format!(
                                "{job_id}: every tasktracker died mid-job"
                            )));
                        }
                        si = (0..reduce_slots.len())
                            .min_by_key(|&i| (reduce_slots[i].free_at, reduce_slots[i].node.0))
                            .unwrap_or(0); // non-empty: checked just above
                    }
                }
            }
        }

        // ----------------------------------- speculative execution: reduces
        //
        // Same estimator, one twist: the racer never commits (the primary
        // owns `part-r-NNNNN`; the racer's bytes are identical), so its
        // race position is its compute finish plus the primary's observed
        // commit-write cost.
        if job.conf.speculative && job.conf.speculative_reduces {
            let cap = speculator.cap(num_reduces.max(1));
            let mut speculated: BTreeSet<u32> = BTreeSet::new();
            let mut order: Vec<usize> = (0..reduce_slots.len()).collect();
            order.sort_by_key(|&i| (reduce_slots[i].free_at, reduce_slots[i].node.0));
            for si in order {
                if speculated.len() >= cap {
                    break;
                }
                let node = reduce_slots[si].node;
                let now = reduce_slots[si].free_at;
                if !self.trackers.get(&node).is_some_and(|t| t.health.alive) {
                    continue;
                }
                let mut completed: Vec<u64> = reduce_prim
                    .iter()
                    .flatten()
                    .filter(|(_, _, end, _)| *end <= now)
                    .map(|(_, start, end, _)| end.since(*start).0)
                    .collect();
                let running: Vec<RunningTask> = reduce_prim
                    .iter()
                    .enumerate()
                    .filter_map(|(id, p)| p.map(|(n, s, e, _)| (id, n, s, e)))
                    .filter(|&(_, _, _, end)| end > now)
                    .map(|(id, n, s, e)| RunningTask {
                        task: u32::try_from(id).unwrap_or(u32::MAX),
                        node: n,
                        start: s,
                        progress_bp: speculator.observed_progress(s, e, now).unwrap_or(0),
                    })
                    .collect();
                let Some(task) =
                    speculator.propose(now, node, &mut completed, &running, &speculated)
                else {
                    continue;
                };
                let valid = reduce_prim.get(task as usize).copied().flatten().is_some_and(
                    |(p_node, _, p_end, _)| {
                        p_end > now && p_node != node && !speculated.contains(&task)
                    },
                );
                if !valid {
                    self.metrics.incr("jobtracker", "spec.invalid", 1);
                    continue;
                }
                // Checked valid just above, so the primary exists.
                let Some((p_node, p_start, p_end, p_compute)) = reduce_prim[task as usize] else {
                    continue;
                };
                speculated.insert(task);
                self.metrics.incr("jobtracker", "spec.launched", 1);
                match self.exec_reduce_attempt(job, &outputs, task as usize, node, now, false) {
                    Ok(attempt) => {
                        let commit_cost = p_end.since(p_compute);
                        let spec_end = attempt.compute_end + commit_cost;
                        if spec_end < p_end {
                            self.metrics.incr("jobtracker", "spec.won", 1);
                            self.metrics.incr(
                                "jobtracker",
                                "spec.wasted_us",
                                spec_end.since(p_start).0,
                            );
                            counters.incr("Job Counters", "Speculative reduce attempts won", 1);
                            if let Some(ps) = reduce_slots
                                .iter_mut()
                                .find(|s| s.node == p_node && s.free_at == p_end)
                            {
                                ps.free_at = spec_end;
                            }
                            reduce_slots[si].free_at = spec_end;
                            if let Some(summary) = tasks
                                .iter_mut()
                                .find(|t| t.kind == TaskKind::Reduce && t.id == task)
                            {
                                summary.node = node;
                                summary.start = now;
                                summary.end = spec_end;
                                summary.speculative = true;
                            }
                            reduce_prim[task as usize] =
                                Some((node, now, spec_end, attempt.compute_end));
                            spec_attempts.push(SpecAttempt {
                                task,
                                reduce: true,
                                node: node.0,
                                start: now,
                                end: spec_end,
                                outcome: SpecOutcome::Won,
                            });
                        } else {
                            self.metrics.incr("jobtracker", "spec.killed", 1);
                            self.metrics.incr("jobtracker", "spec.wasted_us", p_end.since(now).0);
                            reduce_slots[si].free_at = p_end;
                            spec_attempts.push(SpecAttempt {
                                task,
                                reduce: true,
                                node: node.0,
                                start: now,
                                end: p_end,
                                outcome: SpecOutcome::Killed,
                            });
                        }
                    }
                    Err(_) => {
                        let burn = job.conf.task_startup;
                        self.metrics.incr("jobtracker", "spec.lost", 1);
                        self.metrics.incr("jobtracker", "spec.wasted_us", burn.0);
                        reduce_slots[si].free_at = now + burn;
                        spec_attempts.push(SpecAttempt {
                            task,
                            reduce: true,
                            node: node.0,
                            start: now,
                            end: now + burn,
                            outcome: SpecOutcome::Lost,
                        });
                    }
                }
            }
            // Wins pull reduce commits earlier; re-derive the job's finish.
            finished_at = tasks
                .iter()
                .filter(|t| t.kind == TaskKind::Reduce)
                .map(|t| t.end)
                .max()
                .unwrap_or(maps_done);
        }

        // Only *successful* jobs convert their per-job blacklistings into
        // global strikes (a failing job is as likely the job's fault as
        // the tracker's — Hadoop 1.x drew the same line).
        for &node in &job_blacklist {
            let strikes = self.blacklist_strikes.entry(node).or_insert(0);
            *strikes += 1;
            if *strikes == self.max_tracker_blacklists {
                let (n, at) = (*strikes, finished_at);
                self.log.log_with(at, "jobtracker", || {
                    format!("tracker on {node} blacklisted cluster-wide after {n} strike(s)")
                });
            }
        }

        Ok(JobReport {
            job_id: job_id.to_string(),
            name: job.conf.name.clone(),
            submitted_at,
            finished_at,
            success: true,
            counters,
            tasks,
            output_files,
            blacklisted_trackers: job_blacklist,
            peak_mapper_buffer: peak_buffer,
            spec_attempts,
        })
    }

    fn exec_map_attempt<M, R, C>(
        &mut self,
        job: &Job<M, R, C>,
        split: &InputSplit,
        node: NodeId,
        start: SimTime,
        attempt: u32,
    ) -> Result<MapAttempt>
    where
        M: Mapper,
        R: Reducer<KIn = M::KOut, VIn = M::VOut>,
        C: Combiner<K = M::KOut, V = M::VOut>,
    {
        if job.conf.fail_first_attempts >= attempt {
            return Err(HlError::TaskFailed(format!(
                "injected failure (attempt {attempt} of task on {node})"
            )));
        }
        // The node's degrade profile, sampled when the attempt starts:
        // CPU-bound charges scale here; disk and NIC charges scale inside
        // the network layer at their own charge instants.
        let profile = self.net.node_profile(node, start);
        let mut t = start + PerfProfile::scale_dur(job.conf.task_startup, profile.cpu_mult);

        // Read the split's block through the DFS client (charged, verified,
        // locality-aware).
        let read = self.dfs.read_block(&mut self.net, t, split.block, Some(node), &split.path)?;
        let block_bytes = read.value;
        t = read.completed_at;
        let locality =
            self.net.topology().best_locality(node, &split.holders).unwrap_or(Locality::OffRack);

        // Compressed input: each block holds whole hl-codec frames (the
        // writer cuts blocks on frame boundaries), so this split decodes
        // independently of its neighbors. The disk and NIC moved only the
        // stored bytes; inflating them is a CPU charge on this node.
        let input_codec = self.dfs.file_codec(&split.path)?;
        let mut data = if input_codec == hl_codec::CodecId::Null {
            block_bytes.to_vec()
        } else {
            let raw = hl_codec::decompress_container(&block_bytes)?;
            t += PerfProfile::scale_dur(
                SimDuration::for_transfer(raw.len() as u64, hl_codec::DECOMPRESS_BYTES_PER_SEC),
                profile.cpu_mult,
            );
            raw
        };
        // The split's logical extent: decoded length for compressed input,
        // the stored block length otherwise.
        let logical_len = data.len() as u64;

        // Stitch the boundary line: previous block's last byte decides
        // whether our first partial line is ours; following block(s) finish
        // our last line.
        let file_blocks = self.dfs.file_blocks(&split.path)?;
        let my_pos = file_blocks
            .iter()
            .position(|(b, _, _)| *b == split.block)
            .ok_or_else(|| HlError::Internal("split block vanished".into()))?;
        // Peek is free but refuses checksum-failing replicas; when every
        // clean replica is gone, fall back to the charged, verified read
        // path, which quarantines the rot and errors honestly (a silent
        // break here would truncate the boundary line and corrupt output).
        let prev_byte = if my_pos == 0 {
            None
        } else {
            let prev = file_blocks[my_pos - 1].0;
            let stored = match self.dfs.peek_block_bytes(prev) {
                Some(b) => b,
                None => {
                    let got =
                        self.dfs.read_block(&mut self.net, t, prev, Some(node), &split.path)?;
                    t = got.completed_at;
                    got.value
                }
            };
            if input_codec == hl_codec::CodecId::Null {
                stored.last().copied()
            } else {
                hl_codec::decompress_container(&stored)?.last().copied()
            }
        };
        let mut next = my_pos + 1;
        while !data[logical_len as usize..].contains(&b'\n') && next < file_blocks.len() {
            let stored = match self.dfs.peek_block_bytes(file_blocks[next].0) {
                Some(b) => b,
                None => {
                    let got = self.dfs.read_block(
                        &mut self.net,
                        t,
                        file_blocks[next].0,
                        Some(node),
                        &split.path,
                    )?;
                    t = got.completed_at;
                    got.value
                }
            };
            if input_codec == hl_codec::CodecId::Null {
                data.extend_from_slice(&stored);
            } else {
                data.extend_from_slice(&hl_codec::decompress_container(&stored)?);
            }
            next += 1;
        }

        // Run the mapper for real.
        let mut scope = TaskScope::new(self.side_files.clone(), self.spec.node.disk_bw);
        // Register always-reported counters up front so the job report
        // shows the group even for empty map output.
        let mut sink_counters = Counters::new();
        sink_counters.touch_task(TaskCounter::MapOutputBytes);
        let mut sink: SpillSink<M::KOut, M::VOut, C> = SpillSink {
            buf: SortBuffer::new(job.conf.num_reduces, job.conf.sort_buffer_bytes)
                .with_partitioner(job.partitioner.clone()),
            combiner: job.combiner.as_ref().map(|f| f()),
            counters: sink_counters,
        };
        let mut mapper = (job.mapper)();
        let mut records = 0u64;
        {
            let mut ctx = MapContext::new(&mut scope, &mut sink);
            mapper.setup(&mut ctx);
            for (off, line) in LineReader::new(prev_byte, &data, logical_len as usize, split.offset)
            {
                records += 1;
                mapper.map(off, &line, &mut ctx);
            }
            mapper.cleanup(&mut ctx);
        }
        let peak = sink.buf.peak_buffered;
        let mut task_counters = sink.counters;
        let mut output = {
            let mut combiner = sink.combiner;
            sink.buf.finish(combiner.as_mut(), &mut task_counters)
        };
        task_counters.merge(&scope.counters);
        task_counters.incr_task(TaskCounter::MapInputRecords, records);
        task_counters.incr_task(TaskCounter::MapOutputBytes, output.total_bytes());
        task_counters.incr_fs(FileSystemCounter::HdfsBytesRead, split.len);
        if locality != Locality::NodeLocal {
            task_counters.incr_fs(FileSystemCounter::RemoteBytesRead, split.len);
        }

        // Map-output compression: pack each partition's run into hl-codec
        // frames. The sorted records themselves are untouched — job output
        // stays byte-identical — but the spill-disk and shuffle-wire
        // charges shrink to the framed sizes, paid for with compress CPU
        // here and decompress CPU at each reducer.
        if job.conf.compress_map_output {
            let raw = output.total_bytes();
            let mut wire = Vec::with_capacity(output.partitions.len());
            let mut packed_total = 0u64;
            for run in &output.partitions {
                let mut plain = Vec::with_capacity(run.bytes() as usize);
                for (k, v) in run.iter() {
                    plain.extend_from_slice(k);
                    plain.extend_from_slice(v);
                }
                let packed = hl_codec::compress_container(job.conf.map_output_codec, &plain);
                packed_total += packed.len() as u64;
                wire.push(packed.len() as u64);
            }
            t += PerfProfile::scale_dur(
                SimDuration::for_transfer(raw, hl_codec::COMPRESS_BYTES_PER_SEC),
                profile.cpu_mult,
            );
            // Spills hit the disk already framed; charge the credit
            // at the whole-output compression ratio (no-op on empty output).
            let scale =
                |bytes: u64| bytes.saturating_mul(packed_total).checked_div(raw).unwrap_or(bytes);
            output.spill_bytes_written = scale(output.spill_bytes_written);
            output.spill_bytes_read = scale(output.spill_bytes_read);
            if let Some(q) = packed_total.saturating_mul(10_000).checked_div(raw) {
                let bp = i64::try_from(q).unwrap_or(i64::MAX);
                self.metrics.set_gauge("jobtracker", "codec.ratio", bp);
            }
            output.wire_bytes = Some(wire);
            self.metrics.incr("jobtracker", "codec.in_bytes", raw);
            self.metrics.incr("jobtracker", "codec.out_bytes", packed_total);
        }

        // CPU + spill I/O charges (combiner invocations cost map-side CPU —
        // the "increased map task run time" students observed).
        let combine_in = task_counters.task(TaskCounter::CombineInputRecords);
        let cpu = PerfProfile::scale_dur(
            job.conf.map_cpu_per_byte * logical_len
                + job.conf.map_cpu_per_record * records
                + job.conf.combine_cpu_per_record * combine_in
                + scope.extra_time,
            profile.cpu_mult,
        );
        t += cpu;
        // Spill I/O adds latency to this task but is deliberately NOT a
        // shared-pipe charge: the engine executes tasks eagerly in
        // assignment order, so a pipe charge here would make *later-
        // executed but concurrently-running* tasks' reads queue behind it
        // (a charge-ordering artifact, not a modeled phenomenon).
        let disk_bw = PerfProfile::scale_bw(self.spec.node.disk_bw, profile.disk_mult).max(1);
        if output.spill_bytes_written > 0 {
            t += SimDuration::for_transfer(output.spill_bytes_written, disk_bw);
            task_counters.incr_fs(FileSystemCounter::FileBytesWritten, output.spill_bytes_written);
        }
        if output.spill_bytes_read > 0 {
            t += SimDuration::for_transfer(output.spill_bytes_read, disk_bw);
            task_counters.incr_fs(FileSystemCounter::FileBytesRead, output.spill_bytes_read);
        }
        if output.num_spills > 0 {
            self.metrics.incr("jobtracker", "spill.count", u64::from(output.num_spills));
            self.metrics.incr("jobtracker", "spill.bytes", output.spill_bytes_written);
        }
        if output.num_spills > 1 {
            // Multiple spill runs force an on-disk merge pass at map end.
            self.metrics.incr("jobtracker", "merge.passes", 1);
            self.metrics.incr("jobtracker", "merge.bytes", output.spill_bytes_read);
        }

        // The paper's heap-leak mechanism: a buggy task can OOM the
        // TaskTracker, which takes the colocated DataNode with it.
        let Some(tracker) = self.trackers.get_mut(&node) else {
            return Err(HlError::DaemonDown(format!("no tasktracker registered on {node}")));
        };
        if tracker.health.host_task(job.conf.leaks_memory) {
            self.dfs.crash_datanode(node);
            self.log.log(
                t,
                &format!("tasktracker/{node}"),
                "java.lang.OutOfMemoryError: Java heap space — daemon exiting",
            );
            return Err(HlError::TaskFailed(format!("tasktracker on {node} crashed (OOM)")));
        }

        if std::env::var("MR_DEBUG_TASKS").is_ok() {
            eprintln!(
                "task on {node}: start={start} read_end={} cpu={cpu} spill_w={} spill_r={} end={t}",
                read.completed_at, output.spill_bytes_written, output.spill_bytes_read
            );
        }
        Ok(MapAttempt { output, end: t, locality, counters: task_counters, peak })
    }

    fn exec_reduce_attempt<M, R, C>(
        &mut self,
        job: &Job<M, R, C>,
        outputs: &[Option<(NodeId, MapOutput, SimTime)>],
        r: usize,
        node: NodeId,
        start: SimTime,
        commit: bool,
    ) -> Result<ReduceAttempt>
    where
        M: Mapper,
        R: Reducer<KIn = M::KOut, VIn = M::VOut>,
        C: Combiner<K = M::KOut, V = M::VOut>,
    {
        let profile = self.net.node_profile(node, start);
        let t0 = start + PerfProfile::scale_dur(job.conf.task_startup, profile.cpu_mult);
        let mut task_counters = Counters::new();

        // Shuffle: fetch this reduce's partition from every map's node.
        // Fetches run concurrently (each charges its own source pipes).
        let mut runs = Vec::new();
        let mut shuffle_done = t0;
        // Decoded at the reducer before the merge when the map side
        // compressed its output (raw bytes, for the decompress charge).
        let mut inflate_bytes = 0u64;
        for (map_node, out, _) in outputs.iter().flatten() {
            // Compressed map output crosses the wire framed; the counter
            // records what actually moved, which is the combiner-style
            // "fewer shuffle bytes" trade students measure.
            let bytes = out.wire_partition_bytes(r);
            // O(1): runs are Arc-backed, so this bumps two refcounts and
            // copies no record bytes. Do NOT mem::take the partition out of
            // the map output — a failed attempt is retried against the same
            // `outputs` slice, which must still hold the data.
            let run = out.partitions[r].clone();
            if bytes > 0 && *map_node != node {
                let c = self.net.transfer(t0, *map_node, node, bytes);
                shuffle_done = shuffle_done.max(c.end);
            }
            if out.wire_bytes.is_some() {
                inflate_bytes += out.partition_bytes(r);
            }
            task_counters.incr_task(TaskCounter::ReduceShuffleBytes, bytes);
            runs.push(run);
        }
        if inflate_bytes > 0 {
            shuffle_done += PerfProfile::scale_dur(
                SimDuration::for_transfer(inflate_bytes, hl_codec::DECOMPRESS_BYTES_PER_SEC),
                profile.cpu_mult,
            );
        }

        // Merge + group (streaming — groups materialize one at a time) and
        // reduce for real.
        let mut scope = TaskScope::new(self.side_files.clone(), self.spec.node.disk_bw);
        let mut lines = Vec::new();
        let mut reducer = (job.reducer)();
        let mut records = 0u64;
        let mut num_groups = 0u64;
        {
            let mut ctx = ReduceContext::new(&mut scope, &mut lines);
            reducer.setup(&mut ctx);
            for (kbytes, vbytes_list) in merge_groups(&runs) {
                num_groups += 1;
                let mut ks = kbytes;
                let key = M::KOut::decode_ordered(&mut ks)
                    .map_err(|e| HlError::Codec(format!("reduce key: {e}")))?;
                let values: Result<Vec<M::VOut>> =
                    vbytes_list.iter().map(|b| M::VOut::from_bytes(b)).collect();
                let values = values?;
                records += values.len() as u64;
                reducer.reduce(key, values, &mut ctx);
            }
            reducer.cleanup(&mut ctx);
        }
        task_counters.incr_task(TaskCounter::ReduceInputGroups, num_groups);
        task_counters.merge(&scope.counters);
        task_counters.incr_task(TaskCounter::ReduceInputRecords, records);

        let cpu = PerfProfile::scale_dur(
            job.conf.reduce_cpu_per_record * records + scope.extra_time,
            profile.cpu_mult,
        );
        let mut t = shuffle_done + cpu;

        // Heap hook for reduces too.
        let Some(tracker) = self.trackers.get_mut(&node) else {
            return Err(HlError::DaemonDown(format!("no tasktracker registered on {node}")));
        };
        if tracker.health.host_task(job.conf.leaks_memory) {
            self.dfs.crash_datanode(node);
            self.log.log(
                t,
                &format!("tasktracker/{node}"),
                "java.lang.OutOfMemoryError: Java heap space — daemon exiting",
            );
            return Err(HlError::TaskFailed(format!("tasktracker on {node} crashed (OOM)")));
        }

        // Write part file to HDFS (real bytes, charged, replicated). A
        // speculative attempt racing a live primary never commits — the
        // primary's file is the one the job owns, and the racer's bytes
        // are identical (same deterministic reducer over the same runs).
        let compute_end = t;
        let out_path = if lines.is_empty() || !commit {
            None
        } else {
            let mut text = lines.join("\n");
            text.push('\n');
            let path = format!("{}/part-r-{:05}", job.conf.output_path, r);
            let put = self.dfs.put(&mut self.net, t, &path, text.as_bytes(), Some(node))?;
            t = put.completed_at;
            task_counters.incr_fs(FileSystemCounter::HdfsBytesWritten, text.len() as u64);
            Some(path)
        };

        Ok(ReduceAttempt { end: t, compute_end, counters: task_counters, out_path })
    }

    /// Read a job's full text output (all part files concatenated, charged).
    pub fn read_output(&mut self, output_path: &str) -> Result<String> {
        let rows = self.dfs.namenode.list(output_path)?;
        let mut text = String::new();
        let mut t = self.now;
        for row in rows.into_iter().filter(|r| !r.is_dir) {
            let got = self.dfs.read(&mut self.net, t, &row.path, None)?;
            text.push_str(&String::from_utf8_lossy(&got.value));
            t = got.completed_at;
        }
        self.now = t;
        Ok(text)
    }
}

/// How the map phase answers the scheduler's placement questions: a map
/// task's distance is its split's best replica locality from the node
/// (node-local 0 < rack-local < off-rack), or 0 everywhere when the
/// locality-ablation arm is on.
struct MapSchedEnv<'a> {
    topo: &'a hl_common::topology::Topology,
    splits: &'a [InputSplit],
    locality_aware: bool,
}

impl SchedulerEnv for MapSchedEnv<'_> {
    fn distance(&self, node: NodeId, _job: usize, task: u32) -> u32 {
        if !self.locality_aware {
            return 0; // FIFO ablation: ignore locations entirely
        }
        let Some(s) = self.splits.get(task as usize) else {
            return u32::MAX;
        };
        self.topo.best_locality(node, &s.holders).map(|l| l.distance()).unwrap_or(u32::MAX)
    }
}

struct MapAttempt {
    output: MapOutput,
    end: SimTime,
    locality: Locality,
    counters: Counters,
    peak: usize,
}

struct ReduceAttempt {
    end: SimTime,
    /// When reduce compute finished, before the HDFS commit write —
    /// what a speculative (non-committing) attempt's race is judged on.
    compute_end: SimTime,
    counters: Counters,
    out_path: Option<String>,
}

struct SpillSink<K: SortableKey, V: Writable, C: Combiner<K = K, V = V>> {
    buf: SortBuffer<K, V>,
    combiner: Option<C>,
    counters: Counters,
}

impl<K: SortableKey, V: Writable, C: Combiner<K = K, V = V>> MapOutputSink<K, V>
    for SpillSink<K, V, C>
{
    fn collect(&mut self, key: K, value: V) {
        self.buf.collect(&key, &value, self.combiner.as_mut(), &mut self.counters);
    }
}

fn locality_counter(l: Locality) -> &'static str {
    match l {
        Locality::NodeLocal => "Data-local map tasks",
        Locality::RackLocal => "Rack-local map tasks",
        Locality::OffRack => "Off-rack map tasks",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobConf;

    // -- A tiny WordCount used across engine tests -----------------------

    struct WcMap;
    impl Mapper for WcMap {
        type KOut = String;
        type VOut = u64;
        fn map(&mut self, _o: u64, line: &str, ctx: &mut MapContext<String, u64>) {
            for w in line.split_whitespace() {
                ctx.emit(w.to_string(), 1);
            }
        }
    }

    struct WcReduce;
    impl Reducer for WcReduce {
        type KIn = String;
        type VIn = u64;
        fn reduce(&mut self, key: String, values: Vec<u64>, ctx: &mut ReduceContext) {
            ctx.emit(key, values.into_iter().sum::<u64>());
        }
    }

    struct WcCombine;
    impl Combiner for WcCombine {
        type K = String;
        type V = u64;
        fn combine(&mut self, _k: &String, values: Vec<u64>, out: &mut Vec<u64>) {
            out.push(values.into_iter().sum());
        }
    }

    fn corpus(words: usize) -> String {
        let vocab = ["the", "quick", "brown", "fox", "lazy", "dog"];
        let mut s = String::new();
        for i in 0..words {
            s.push_str(vocab[i % vocab.len()]);
            s.push(if i % 10 == 9 { '\n' } else { ' ' });
        }
        s.push('\n');
        s
    }

    fn small_cluster() -> MrCluster {
        let mut config = Configuration::with_defaults();
        config.set(hl_common::config::keys::DFS_BLOCK_SIZE, 4096u64);
        MrCluster::new(ClusterSpec::course_hadoop(4), config).unwrap()
    }

    fn stage(cluster: &mut MrCluster, path: &str, text: &str) {
        cluster.dfs.namenode.mkdirs("/in").unwrap();
        let t = cluster.now;
        let put = cluster.dfs.put(&mut cluster.net, t, path, text.as_bytes(), None).unwrap();
        cluster.now = put.completed_at;
    }

    fn parse_counts(text: &str) -> std::collections::BTreeMap<String, u64> {
        text.lines()
            .map(|l| {
                let (k, v) = l.split_once('\t').unwrap();
                (k.to_string(), v.parse().unwrap())
            })
            .collect()
    }

    #[test]
    fn metrics_track_job_lifecycle_and_spills() {
        let mut cluster = small_cluster();
        stage(&mut cluster, "/in/data.txt", &corpus(5000));
        let job = Job::new(
            JobConf::new("wc-metrics").input("/in/data.txt").output("/out/wcm").reduces(2),
            || WcMap,
            || WcReduce,
        );
        let report = cluster.run_job(&job).unwrap();
        let snap = cluster.metrics_snapshot();
        assert_eq!(snap.counter("jobtracker", "jobs.submitted"), 1);
        assert_eq!(snap.counter("jobtracker", "jobs.completed"), 1);
        assert_eq!(snap.counter("jobtracker", "jobs.failed"), 0);
        assert_eq!(
            snap.counter("jobtracker", "shuffle.bytes"),
            report.counters.task(TaskCounter::ReduceShuffleBytes),
        );
        assert_eq!(
            snap.counter("jobtracker", "spill.records"),
            report.counters.task(TaskCounter::SpilledRecords),
        );
        // Task-duration histograms hold one sample per task.
        let maps = report.num_maps() as u64;
        match snap.get("jobtracker", "map.duration_ms") {
            Some(hl_metrics::MetricValue::Histogram(h)) => assert_eq!(h.count(), maps),
            other => panic!("map.duration_ms missing: {other:?}"),
        }
        // The merged snapshot spans every subsystem.
        assert!(snap.counter("namenode", "rpc.add_block") > 0);
        assert!(snap.counter_across_daemons("bytes.read") > 0);
        assert!(snap.gauge("jobtracker", "trackers.live") == 4);
        assert!(snap.gauge("network", "remote.bytes") >= 0);
        // Snapshots are deterministic: rendering twice is byte-identical.
        let again = cluster.metrics_snapshot();
        use hl_common::writable::Writable;
        assert_eq!(snap.to_bytes(), again.to_bytes());
    }

    #[test]
    fn wordcount_end_to_end_is_correct() {
        let mut cluster = small_cluster();
        let text = corpus(5000);
        stage(&mut cluster, "/in/data.txt", &text);
        let job = Job::new(
            JobConf::new("wordcount").input("/in/data.txt").output("/out/wc").reduces(2),
            || WcMap,
            || WcReduce,
        );
        let report = cluster.run_job(&job).unwrap();
        assert!(report.success);
        assert!(report.num_maps() > 1, "multiple blocks → multiple maps");
        assert_eq!(report.num_reduces(), 2);
        let out = cluster.read_output("/out/wc").unwrap();
        let counts = parse_counts(&out);
        // Ground truth.
        let mut expected = std::collections::BTreeMap::new();
        for w in text.split_whitespace() {
            *expected.entry(w.to_string()).or_insert(0u64) += 1;
        }
        assert_eq!(counts, expected);
        // Counters add up.
        assert_eq!(report.counters.task(TaskCounter::MapInputRecords), text.lines().count() as u64);
        assert_eq!(report.counters.task(TaskCounter::MapOutputRecords), 5000);
        assert_eq!(report.counters.task(TaskCounter::ReduceOutputRecords), 6);
        assert!(report.elapsed() > SimDuration::ZERO);
    }

    #[test]
    fn combiner_reduces_shuffle_but_not_answers() {
        let mut cluster = small_cluster();
        let text = corpus(8000);
        stage(&mut cluster, "/in/data.txt", &text);

        let plain = Job::new(
            JobConf::new("wc").input("/in/data.txt").output("/out/plain").reduces(2),
            || WcMap,
            || WcReduce,
        );
        let plain_report = cluster.run_job(&plain).unwrap();
        let plain_out = parse_counts(&cluster.read_output("/out/plain").unwrap());

        let combined = Job::with_combiner(
            JobConf::new("wc+c").input("/in/data.txt").output("/out/comb").reduces(2),
            || WcMap,
            || WcReduce,
            || WcCombine,
        );
        let comb_report = cluster.run_job(&combined).unwrap();
        let comb_out = parse_counts(&cluster.read_output("/out/comb").unwrap());

        assert_eq!(plain_out, comb_out, "combiner must not change results");
        assert!(
            comb_report.shuffle_bytes() < plain_report.shuffle_bytes() / 4,
            "combiner collapses shuffle: {} vs {}",
            comb_report.shuffle_bytes(),
            plain_report.shuffle_bytes()
        );
        assert!(comb_report.counters.task(TaskCounter::CombineInputRecords) > 0);
    }

    #[test]
    fn compressed_map_output_shrinks_shuffle_but_not_answers() {
        let mut cluster = small_cluster();
        let text = corpus(8000);
        stage(&mut cluster, "/in/data.txt", &text);

        let plain = Job::new(
            JobConf::new("wc").input("/in/data.txt").output("/out/plain").reduces(2),
            || WcMap,
            || WcReduce,
        );
        let plain_report = cluster.run_job(&plain).unwrap();
        let plain_out = cluster.read_output("/out/plain").unwrap();

        let packed = Job::new(
            JobConf::new("wc+z")
                .input("/in/data.txt")
                .output("/out/packed")
                .reduces(2)
                .compress_map_output(true),
            || WcMap,
            || WcReduce,
        );
        let packed_report = cluster.run_job(&packed).unwrap();
        let packed_out = cluster.read_output("/out/packed").unwrap();

        assert_eq!(plain_out, packed_out, "codec must not change job output");
        assert!(
            packed_report.shuffle_bytes() < plain_report.shuffle_bytes() / 2,
            "framed shuffle should at least halve on repetitive text: {} vs {}",
            packed_report.shuffle_bytes(),
            plain_report.shuffle_bytes()
        );
        // The codec counters record both sides of the trade.
        let snap = cluster.metrics_snapshot();
        let raw = snap.counter("jobtracker", "codec.in_bytes");
        let out = snap.counter("jobtracker", "codec.out_bytes");
        assert!(raw > 0 && out > 0 && out < raw, "codec.in/out: {raw}/{out}");
        assert!(snap.gauge("jobtracker", "codec.ratio") < 10_000, "ratio gauge in basis points");

        // LocalJobRunner ground truth: the cluster's compressed run and
        // assignment 1's serial runner agree byte for byte.
        let local = crate::local::LocalRunner::serial()
            .run(&plain, &[("data.txt".to_string(), text.into_bytes())], &SideFiles::default())
            .unwrap();
        let mut local_text = local.output.join("\n");
        local_text.push('\n');
        let local_counts = parse_counts(&local_text);
        assert_eq!(parse_counts(&packed_out), local_counts);
    }

    #[test]
    fn compressed_input_splits_stitch_lines_like_plain_ones() {
        let mut cluster = small_cluster();
        let text = corpus(50_000);
        stage(&mut cluster, "/in/plain.txt", &text);
        // Stage the same corpus compressed: blocks hold whole frames, so
        // each split decodes independently and the newline stitch works on
        // decoded bytes.
        cluster.dfs.namenode.mkdirs("/in").unwrap();
        let t = cluster.now;
        let put = cluster
            .dfs
            .put_compressed(
                &mut cluster.net,
                t,
                "/in/packed.txt",
                text.as_bytes(),
                None,
                hl_codec::CodecId::Hlz,
            )
            .unwrap();
        cluster.now = put.completed_at;

        let plain = Job::new(
            JobConf::new("wc").input("/in/plain.txt").output("/out/plain").reduces(2),
            || WcMap,
            || WcReduce,
        );
        cluster.run_job(&plain).unwrap();
        let plain_out = cluster.read_output("/out/plain").unwrap();

        let packed = Job::new(
            JobConf::new("wc-z-in").input("/in/packed.txt").output("/out/zin").reduces(2),
            || WcMap,
            || WcReduce,
        );
        let report = cluster.run_job(&packed).unwrap();
        let packed_out = cluster.read_output("/out/zin").unwrap();

        assert_eq!(plain_out, packed_out, "compressed input must decode to the same answers");
        assert!(report.success);
        // The compressed file stores fewer bytes than the logical corpus,
        // and its split count reflects the stored (framed) blocks.
        let stored: u64 =
            cluster.dfs.file_blocks("/in/packed.txt").unwrap().iter().map(|(_, l, _)| l).sum();
        assert!(stored * 2 < text.len() as u64, "stored {stored} vs logical {}", text.len());
    }

    #[test]
    fn submission_fails_in_safemode_and_on_existing_output() {
        let mut cluster = small_cluster();
        stage(&mut cluster, "/in/data.txt", "a b c\n");
        let job = Job::new(
            JobConf::new("j").input("/in/data.txt").output("/out/j"),
            || WcMap,
            || WcReduce,
        );
        cluster.dfs.namenode.safemode.force_enter();
        assert!(matches!(cluster.run_job(&job), Err(HlError::SafeMode(_))));
        cluster.dfs.namenode.safemode.force_leave();
        cluster.run_job(&job).unwrap();
        // Output dir now exists → resubmission refused (classic student trip).
        assert!(matches!(cluster.run_job(&job), Err(HlError::AlreadyExists(_))));
    }

    #[test]
    fn retries_recover_from_transient_task_failures() {
        let mut cluster = small_cluster();
        stage(&mut cluster, "/in/data.txt", &corpus(500));
        let job = Job::new(
            JobConf::new("flaky").input("/in/data.txt").output("/out/flaky").fail_first_attempts(2),
            || WcMap,
            || WcReduce,
        );
        let report = cluster.run_job(&job).unwrap();
        assert!(report.success);
        assert!(report.tasks.iter().any(|t| t.attempts == 3));
    }

    #[test]
    fn too_many_failures_kill_the_job() {
        let mut cluster = small_cluster();
        stage(&mut cluster, "/in/data.txt", "a\n");
        let job = Job::new(
            JobConf::new("doomed")
                .input("/in/data.txt")
                .output("/out/doomed")
                .fail_first_attempts(10),
            || WcMap,
            || WcReduce,
        );
        assert!(matches!(cluster.run_job(&job), Err(HlError::JobFailed(_))));
        // Failed jobs clean up their output directory.
        assert!(!cluster.dfs.namenode.namespace().exists("/out/doomed"));
    }

    #[test]
    fn leaking_jobs_crash_trackers_and_datanodes() {
        let mut cluster = small_cluster();
        stage(&mut cluster, "/in/data.txt", &corpus(4000));
        // Crash threshold is 13 buggy tasks per daemon; run leaking jobs
        // until daemons start dying.
        let mut crashed = false;
        for i in 0..30 {
            let job = Job::new(
                JobConf::new("leaky")
                    .input("/in/data.txt")
                    .output(format!("/out/leak{i}"))
                    .speculative(false)
                    .leaking(true),
                || WcMap,
                || WcReduce,
            );
            // Crash-path runs are allowed to fail; the assertion below is
            // about cluster state, not job success.
            let _ = cluster.run_job(&job);
            if cluster.live_tracker_nodes().len() < 4 {
                crashed = true;
                break;
            }
        }
        assert!(crashed, "heap leaks must eventually kill a tasktracker");
        // The colocated DataNode died too.
        let dead: Vec<NodeId> =
            (0..4u32).map(NodeId).filter(|n| !cluster.live_tracker_nodes().contains(n)).collect();
        for n in &dead {
            assert!(!cluster.dfs.datanode(*n).unwrap().alive);
        }
        // Restart brings them back.
        cluster.restart_dead_trackers();
        assert_eq!(cluster.live_tracker_nodes().len(), 4);
    }

    #[test]
    fn map_tasks_are_mostly_data_local_on_course_cluster() {
        let mut cluster = small_cluster();
        stage(&mut cluster, "/in/data.txt", &corpus(20_000));
        let job = Job::new(
            JobConf::new("loc").input("/in/data.txt").output("/out/loc"),
            || WcMap,
            || WcReduce,
        );
        let report = cluster.run_job(&job).unwrap();
        let (dl, rl, or) = report.locality_histogram();
        assert!(dl > 0);
        assert_eq!(dl + rl + or, report.num_maps());
        // With 3× replication on 4 nodes, most maps should be data-local.
        assert!(dl * 2 >= report.num_maps(), "data-local {dl} of {}", report.num_maps());
    }

    #[test]
    fn speculative_execution_rescues_stragglers() {
        // 2 map slots per node so the straggler node is guaranteed work.
        let mut config = Configuration::with_defaults();
        config.set(hl_common::config::keys::DFS_BLOCK_SIZE, 4096u64);
        config.set(hl_common::config::keys::MAPRED_MAP_SLOTS, 2);
        let mut cluster = MrCluster::new(ClusterSpec::course_hadoop(4), config).unwrap();
        stage(&mut cluster, "/in/data.txt", &corpus(20_000));
        cluster.set_slow_node(NodeId(3), 50.0);

        let slow_job = Job::new(
            JobConf::new("no-spec").input("/in/data.txt").output("/out/nospec").speculative(false),
            || WcMap,
            || WcReduce,
        );
        let no_spec = cluster.run_job(&slow_job).unwrap();

        let spec_job = Job::new(
            JobConf::new("spec").input("/in/data.txt").output("/out/spec").speculative(true),
            || WcMap,
            || WcReduce,
        );
        let with_spec = cluster.run_job(&spec_job).unwrap();

        assert!(
            with_spec.elapsed() < no_spec.elapsed(),
            "speculation must beat the straggler: {} vs {}",
            with_spec.elapsed(),
            no_spec.elapsed()
        );
        assert!(with_spec.tasks.iter().any(|t| t.speculative));
    }

    #[test]
    fn side_files_work_from_dfs_cache() {
        let mut cluster = small_cluster();
        stage(&mut cluster, "/in/data.txt", "x\ny\n");
        stage(&mut cluster, "/in/lookup.txt", "x=ex\ny=why\n");
        cluster.cache_from_dfs("/in/lookup.txt").unwrap();

        struct LookupMap;
        impl Mapper for LookupMap {
            type KOut = String;
            type VOut = u64;
            fn map(&mut self, _o: u64, line: &str, ctx: &mut MapContext<String, u64>) {
                // The naive pattern: read the side file on every record.
                let bytes = ctx.read_side_file("/in/lookup.txt").unwrap();
                let table = String::from_utf8_lossy(&bytes);
                for entry in table.lines() {
                    if let Some((k, v)) = entry.split_once('=') {
                        if k == line.trim() {
                            ctx.emit(v.to_string(), 1);
                        }
                    }
                }
            }
        }
        let job = Job::new(
            JobConf::new("lookup").input("/in/data.txt").output("/out/lk"),
            || LookupMap,
            || WcReduce,
        );
        let report = cluster.run_job(&job).unwrap();
        let out = parse_counts(&cluster.read_output("/out/lk").unwrap());
        assert_eq!(out["ex"], 1);
        assert_eq!(out["why"], 1);
        assert_eq!(report.counters.get("Side Files", "reads"), 2);
    }

    #[test]
    fn job_ids_increment() {
        let mut cluster = small_cluster();
        stage(&mut cluster, "/in/data.txt", "a\n");
        for i in 1..=3 {
            let job = Job::new(
                JobConf::new("j").input("/in/data.txt").output(format!("/out/{i}")),
                || WcMap,
                || WcReduce,
            );
            let r = cluster.run_job(&job).unwrap();
            assert_eq!(r.job_id, format!("job_{i:04}"));
        }
    }

    #[test]
    fn flaky_tracker_is_blacklisted_per_job_then_cluster_wide() {
        let mut config = Configuration::with_defaults();
        config.set(hl_common::config::keys::DFS_BLOCK_SIZE, 4096u64);
        // One failed attempt blacklists a tracker for the job; one such
        // blacklisting (on a successful job) bans it cluster-wide.
        config.set(hl_common::config::keys::MAPRED_MAX_TRACKER_FAILURES, 1u32);
        config.set(hl_common::config::keys::MAPRED_MAX_TRACKER_BLACKLISTS, 1u32);
        let mut cluster = MrCluster::new(ClusterSpec::course_hadoop(4), config).unwrap();
        stage(&mut cluster, "/in/data.txt", &corpus(200));
        let job = Job::new(
            JobConf::new("flaky")
                .input("/in/data.txt")
                .output("/out/flaky")
                .fail_first_attempts(1)
                .speculative(false),
            || WcMap,
            || WcReduce,
        );
        let report = cluster.run_job(&job).unwrap();
        assert!(report.success, "retries on other trackers carried the job");
        assert!(!report.blacklisted_trackers.is_empty());
        assert!(
            report.counters.get("Job Counters", "Trackers blacklisted")
                >= report.blacklisted_trackers.len() as u64
        );
        // The successful job converted its blacklistings to global strikes.
        let banned = cluster.blacklisted_trackers();
        for n in &report.blacklisted_trackers {
            assert!(banned.contains(n), "{n} should be banned cluster-wide");
        }
        // A clean follow-up job schedules nothing on the banned trackers.
        let job2 = Job::new(
            JobConf::new("clean").input("/in/data.txt").output("/out/clean").speculative(false),
            || WcMap,
            || WcReduce,
        );
        let r2 = cluster.run_job(&job2).unwrap();
        assert!(r2.success);
        assert!(r2.blacklisted_trackers.is_empty());
        assert!(r2.tasks.iter().all(|t| !banned.contains(&t.node)));
        // The operator restart pass forgives everything.
        cluster.restart_dead_trackers();
        assert!(cluster.blacklisted_trackers().is_empty());
    }

    #[test]
    fn failed_jobs_do_not_add_global_strikes() {
        let mut config = Configuration::with_defaults();
        config.set(hl_common::config::keys::DFS_BLOCK_SIZE, 4096u64);
        config.set(hl_common::config::keys::MAPRED_MAX_TRACKER_FAILURES, 1u32);
        config.set(hl_common::config::keys::MAPRED_MAX_TRACKER_BLACKLISTS, 1u32);
        let mut cluster = MrCluster::new(ClusterSpec::course_hadoop(4), config).unwrap();
        stage(&mut cluster, "/in/data.txt", &corpus(200));
        // Every attempt fails: the job dies with attempts exhausted, and
        // its per-job blacklistings must NOT stick to the trackers — a
        // failing job is as likely the job's fault as the tracker's.
        let job = Job::new(
            JobConf::new("doomed")
                .input("/in/data.txt")
                .output("/out/doomed")
                .fail_first_attempts(100)
                .speculative(false),
            || WcMap,
            || WcReduce,
        );
        assert!(cluster.run_job(&job).is_err());
        assert!(cluster.blacklisted_trackers().is_empty());
    }
}
