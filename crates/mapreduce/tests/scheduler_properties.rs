//! Property suite for the pluggable `Scheduler` policies.
//!
//! Three families of properties pin down the scheduler refactor:
//!
//! 1. **FIFO equivalence** — the extracted [`FifoScheduler`] makes
//!    byte-identical decisions to the pre-refactor inline JobTracker
//!    logic. This file keeps that original algorithm as a reference
//!    model (earliest-free slot via first-minimum `min_by_key`, then the
//!    pending task with the smallest `(locality distance, id)`) and
//!    drains both over random slot farms and adversarial distance
//!    tables.
//! 2. **Fair determinism** — the Fair policy's deficit ordering is a
//!    total deterministic order: two fresh schedulers drain a random
//!    multi-tenant job set in exactly the same sequence, and every
//!    pending task is eventually placed (the ordering never wedges).
//! 3. **Capacity bounds** — under saturation (tasks start and never
//!    finish) no leaf queue, parent queue, or single user ever exceeds
//!    its maximum-capacity slot bound, recomputed here independently
//!    from the configured percentages.

use std::collections::BTreeMap;

use hl_common::prelude::*;
use hl_mapreduce::{
    CapacityScheduler, FairScheduler, FifoScheduler, JobView, QueueSpec, Scheduler, SchedulerEnv,
    SlotState,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Shared scaffolding
// ---------------------------------------------------------------------------

/// Owned job state the drains mutate; `view()` borrows it as the
/// scheduler's `JobView`.
#[derive(Debug, Clone)]
struct OwnedJob {
    user: String,
    pool: String,
    priority: u32,
    submitted_at: SimTime,
    pending: Vec<u32>,
    running: Vec<u32>,
}

impl OwnedJob {
    fn view(&self) -> JobView<'_> {
        JobView {
            user: &self.user,
            pool: &self.pool,
            priority: self.priority,
            submitted_at: self.submitted_at,
            pending: &self.pending,
            running: &self.running,
        }
    }
}

/// Deterministic pseudo-random locality table: distance is a pure hash of
/// `(seed, node, task)`, with an occasional `u32::MAX` ("no replica
/// anywhere near this node") thrown in.
struct SeededEnv {
    seed: u64,
}

impl SchedulerEnv for SeededEnv {
    fn distance(&self, node: NodeId, _job: usize, task: u32) -> u32 {
        let h = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(node.0).wrapping_mul(0x85EB_CA6B))
            .wrapping_add(u64::from(task).wrapping_mul(0xC2B2_AE35));
        match h % 7 {
            6 => u32::MAX,
            d => d as u32,
        }
    }
}

fn slots_from(raw: &[(u32, u64)]) -> Vec<SlotState> {
    raw.iter().map(|&(n, f)| SlotState { node: NodeId(n), free_at: SimTime(f) }).collect()
}

// ---------------------------------------------------------------------------
// 1. FIFO-via-trait is byte-identical to the pre-refactor inline logic
// ---------------------------------------------------------------------------

/// The JobTracker's original inline pick, kept verbatim as a reference
/// model: `min_by_key` over `(free_at, node)` (Rust's `min_by_key`
/// returns the *first* minimum, so slot index is the implicit
/// tie-breaker), then the pending task minimizing `(distance, id)`.
fn reference_pick(
    slots: &[SlotState],
    pending: &[u32],
    env: &dyn SchedulerEnv,
) -> Option<(usize, u32)> {
    let (slot, st) = slots.iter().enumerate().min_by_key(|(_, s)| (s.free_at, s.node.0))?;
    let task = pending.iter().copied().min_by_key(|&t| (env.distance(st.node, 0, t), t))?;
    Some((slot, task))
}

/// Drain one single-tenant job to empty through `pick`, applying the
/// engine's slot bookkeeping (task occupies its slot for `durs[task]`).
fn drain_single<F>(
    mut slots: Vec<SlotState>,
    num_tasks: u32,
    durs: &[u64],
    mut pick: F,
) -> Vec<(usize, u32)>
where
    F: FnMut(&[SlotState], &[u32]) -> Option<(usize, u32)>,
{
    let mut pending: Vec<u32> = (0..num_tasks).collect();
    let mut log = Vec::new();
    while !pending.is_empty() {
        let Some((slot, task)) = pick(&slots, &pending) else { break };
        log.push((slot, task));
        let pos = pending.iter().position(|&t| t == task).expect("picked a non-pending task");
        pending.swap_remove(pos);
        slots[slot].free_at += SimDuration::from_micros(durs[task as usize]);
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn fifo_scheduler_matches_prerefactor_inline_logic(
        raw_slots in proptest::collection::vec((0u32..6, 0u64..1_000), 1..12),
        durs in proptest::collection::vec(1u64..500, 1..40),
        seed in any::<u64>(),
    ) {
        let num_tasks = durs.len() as u32;
        let env = SeededEnv { seed };

        let reference = drain_single(
            slots_from(&raw_slots),
            num_tasks,
            &durs,
            |slots, pending| reference_pick(slots, pending, &env),
        );

        let mut sched = FifoScheduler;
        let mut job = OwnedJob {
            user: "student".into(),
            pool: "default".into(),
            priority: 0,
            submitted_at: SimTime::ZERO,
            pending: Vec::new(),
            running: Vec::new(),
        };
        let traited = drain_single(
            slots_from(&raw_slots),
            num_tasks,
            &durs,
            |slots, pending| {
                job.pending = pending.to_vec();
                let views = [job.view()];
                sched
                    .next_assignment(SimTime::ZERO, slots, &views, &env)
                    .map(|a| (a.slot, a.task))
            },
        );

        prop_assert_eq!(reference.len(), num_tasks as usize);
        prop_assert_eq!(&traited, &reference);
    }
}

// ---------------------------------------------------------------------------
// 2. Fair deficit ordering is a total deterministic order
// ---------------------------------------------------------------------------

/// One generated tenant job: `(user/pool byte, priority, submitted_at µs,
/// pending count, already-running count)`. User and pool share one byte
/// (low/high nibble) because the vendored strategy tuples cap at arity 5.
type RawJob = (u8, u32, u64, u8, u8);

fn raw_job() -> impl Strategy<Value = RawJob> {
    (0u8..=255, 0u32..3, 0u64..100, 0u8..10, 0u8..4)
}

fn fair_jobs(raw: &[RawJob]) -> Vec<OwnedJob> {
    raw.iter()
        .map(|&(tenant, priority, at, npend, nrun)| OwnedJob {
            user: format!("user-{}", tenant % 5),
            pool: format!("pool-{}", (tenant >> 4) % 4),
            priority: priority % 3,
            submitted_at: SimTime(at),
            pending: (0..u32::from(npend)).collect(),
            // Running ids live in a disjoint range so a preasigned task
            // can never collide with a pending one.
            running: (1_000..1_000 + u32::from(nrun)).collect(),
        })
        .collect()
}

/// Assign until the policy returns `None`, moving each placed task from
/// `pending` to `running` (saturation: nothing ever finishes).
fn drain_to_saturation(
    sched: &mut dyn Scheduler,
    jobs: &mut [OwnedJob],
    num_slots: usize,
    env: &dyn SchedulerEnv,
) -> Vec<(usize, usize, u32)> {
    let slots: Vec<SlotState> = (0..num_slots)
        .map(|i| SlotState { node: NodeId(i as u32 % 4), free_at: SimTime::ZERO })
        .collect();
    let mut log = Vec::new();
    loop {
        let views: Vec<JobView<'_>> = jobs.iter().map(|j| j.view()).collect();
        let Some(a) = sched.next_assignment(SimTime::ZERO, &slots, &views, env) else { break };
        drop(views);
        log.push((a.slot, a.job, a.task));
        let job = &mut jobs[a.job];
        let pos = job.pending.iter().position(|&t| t == a.task).expect("non-pending task");
        job.pending.swap_remove(pos);
        job.running.push(a.task);
        assert!(log.len() <= 10_000, "drain did not terminate");
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn fair_ordering_is_total_and_deterministic(
        raw in proptest::collection::vec(raw_job(), 1..8),
        specs in proptest::collection::vec((1u64..4, 0u64..4), 4..5),
    ) {
        let build = || {
            let mut s = FairScheduler::new(SimDuration::from_secs(30));
            for (i, &(w, ms)) in specs.iter().enumerate() {
                s = s.pool(format!("pool-{i}"), w, ms);
            }
            s
        };
        let total_pending: usize = fair_jobs(&raw).iter().map(|j| j.pending.len()).sum();

        let mut jobs_a = fair_jobs(&raw);
        let mut sched_a = build();
        let log_a = drain_to_saturation(&mut sched_a, &mut jobs_a, 6, &SeededEnv { seed: 7 });

        let mut jobs_b = fair_jobs(&raw);
        let mut sched_b = build();
        let log_b = drain_to_saturation(&mut sched_b, &mut jobs_b, 6, &SeededEnv { seed: 7 });

        // Same inputs, same total order — and the order is total: with no
        // capacity ceilings the Fair policy places every pending task.
        prop_assert_eq!(&log_a, &log_b);
        prop_assert_eq!(log_a.len(), total_pending);
    }
}

// ---------------------------------------------------------------------------
// 3. Capacity queues never exceed their maximums
// ---------------------------------------------------------------------------

/// Independent re-derivation of the scheduler's absolute maximum slot
/// bound for a queue: percentages compose down the parent chain in basis
/// points, floored at one slot so tiny queues cannot deadlock.
fn max_slots(total: usize, chain_max_pcts: &[u64]) -> u64 {
    let mut cap_bp = 10_000u64;
    for &pct in chain_max_pcts {
        cap_bp = cap_bp * pct / 100;
    }
    (total as u64 * cap_bp / 10_000).max(1)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn capacity_queues_never_exceed_maximums(
        // Two root queues; their leaf children's (capacity, max, user) pcts.
        root_max in proptest::collection::vec(30u64..=100, 2..3),
        leaf in proptest::collection::vec((10u64..=60, 20u64..=100, 10u64..=100), 4..5),
        raw in proptest::collection::vec(raw_job(), 1..10),
        num_slots in 2usize..16,
    ) {
        let mut sched = CapacityScheduler::new()
            .queue("batch", QueueSpec {
                capacity_pct: 60, max_capacity_pct: root_max[0], user_limit_pct: 100,
                parent: None,
            })
            .queue("adhoc", QueueSpec {
                capacity_pct: 40, max_capacity_pct: root_max[1], user_limit_pct: 100,
                parent: None,
            });
        for (i, &(cap, max, user)) in leaf.iter().enumerate() {
            let parent = if i.is_multiple_of(2) { "batch" } else { "adhoc" };
            sched = sched.queue(format!("q{i}"), QueueSpec {
                capacity_pct: cap,
                max_capacity_pct: max,
                user_limit_pct: user,
                parent: Some(parent.to_string()),
            });
        }

        // Route jobs across the four leaves plus one unknown pool (which
        // the scheduler must send to `default`); start with nothing
        // running so the drain alone is responsible for every placement.
        let mut jobs: Vec<OwnedJob> = fair_jobs(&raw);
        for (i, j) in jobs.iter_mut().enumerate() {
            j.pool = if i % 5 == 4 { "mystery".into() } else { format!("q{}", i % 5) };
            j.running.clear();
        }

        let log =
            drain_to_saturation(&mut sched, &mut jobs, num_slots, &SeededEnv { seed: 11 });

        // Tally final running tasks per leaf queue, per root, per user.
        let route = |pool: &str| -> String {
            if pool.starts_with('q') { pool.to_string() } else { "default".to_string() }
        };
        let mut per_queue: BTreeMap<String, u64> = BTreeMap::new();
        let mut per_user: BTreeMap<(String, String), u64> = BTreeMap::new();
        for j in &jobs {
            let q = route(&j.pool);
            *per_queue.entry(q.clone()).or_default() += j.running.len() as u64;
            *per_user.entry((q, j.user.clone())).or_default() += j.running.len() as u64;
        }

        // Clamping mirrors `QueueSpec::clamped`: max ≥ capacity, at both
        // the leaf and its root (batch guarantees 60%, adhoc 40%).
        let leaf_chain = |i: usize| -> Vec<u64> {
            let (cap, max, _) = leaf[i];
            let root_cap = if i.is_multiple_of(2) { 60 } else { 40 };
            vec![max.max(cap), root_max[i % 2].max(root_cap)]
        };
        for (i, &(_, _, user_pct)) in leaf.iter().enumerate().take(4) {
            let bound = max_slots(num_slots, &leaf_chain(i));
            let used = per_queue.get(&format!("q{i}")).copied().unwrap_or(0);
            prop_assert!(
                used <= bound,
                "leaf q{} runs {} tasks, maximum is {}", i, used, bound
            );
            let user_cap = (bound * user_pct / 100).max(1);
            for ((q, user), &n) in &per_user {
                if q == &format!("q{i}") {
                    prop_assert!(
                        n <= user_cap,
                        "user {} holds {} slots in q{}, user limit is {}", user, n, i, user_cap
                    );
                }
            }
        }
        // Parents bound their descendants' aggregate.
        for (pi, parent) in ["batch", "adhoc"].iter().enumerate() {
            let root_cap = if pi == 0 { 60 } else { 40 };
            let bound = max_slots(num_slots, &[root_max[pi].max(root_cap)]);
            let used: u64 = (0..4)
                .filter(|i| i % 2 == pi)
                .map(|i| per_queue.get(&format!("q{i}")).copied().unwrap_or(0))
                .sum();
            prop_assert!(
                used <= bound,
                "root {} charges {} tasks, maximum is {}", parent, used, bound
            );
        }
        // The default queue has no ceiling below the farm itself.
        prop_assert!(log.len() <= num_slots * 100);
    }
}
