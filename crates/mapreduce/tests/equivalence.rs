//! Equivalence suite for the sort/spill/shuffle hot path.
//!
//! The arena-backed `SortBuffer` and the tournament-tree merge are pure
//! performance rewrites: their observable behavior — output bytes, spill
//! accounting, combiner counters — must be byte-identical to the original
//! owned-pairs pipeline. This file keeps a naive reference implementation
//! of that pipeline (per-record `Vec`s, stable sorts, concat-and-sort
//! merge) and drives both with the same inputs:
//!
//! * a seeded deterministic sweep (always runs), and
//! * a `proptest` property over random inputs.
//!
//! A second property checks that the parallel reduce phase of the
//! `LocalRunner` produces exactly the serial runner's output and counters.

use hl_common::counters::{Counters, TaskCounter};
use hl_common::hash::default_partition;
use hl_common::keys::SortableKey;
use hl_common::writable::Writable;
use hl_mapreduce::api::{
    Combiner, MapContext, Mapper, NoCombiner, ReduceContext, Reducer, SideFiles,
};
use hl_mapreduce::job::{Job, JobConf};
use hl_mapreduce::local::LocalRunner;
use hl_mapreduce::sortbuf::SortBuffer;

// ---------------------------------------------------------------------------
// Naive reference: the pre-kvbuffer pipeline, owned pairs all the way.
// ---------------------------------------------------------------------------

type Pair = (Vec<u8>, Vec<u8>);

struct RefOutput {
    partitions: Vec<Vec<Pair>>,
    spill_bytes_written: u64,
    spill_bytes_read: u64,
    num_spills: u32,
    peak_buffered: usize,
}

struct RefBuffer {
    num_partitions: usize,
    buffer_limit: usize,
    current: Vec<Vec<Pair>>,
    bytes_buffered: usize,
    peak_buffered: usize,
    spills: Vec<Vec<Vec<Pair>>>,
    spill_bytes_written: u64,
}

fn pairs_bytes(run: &[Pair]) -> u64 {
    run.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum()
}

impl RefBuffer {
    fn new(num_partitions: usize, buffer_limit: usize) -> Self {
        RefBuffer {
            num_partitions,
            buffer_limit: buffer_limit.max(1),
            current: vec![Vec::new(); num_partitions],
            bytes_buffered: 0,
            peak_buffered: 0,
            spills: Vec::new(),
            spill_bytes_written: 0,
        }
    }

    fn collect<K: SortableKey, V: Writable, C: Combiner<K = K, V = V>>(
        &mut self,
        key: &K,
        value: &V,
        combiner: Option<&mut C>,
        counters: &mut Counters,
    ) {
        let kbytes = key.ordered_bytes();
        let vbytes = value.to_bytes();
        let p = default_partition(&kbytes, self.num_partitions);
        self.bytes_buffered += kbytes.len() + vbytes.len();
        self.peak_buffered = self.peak_buffered.max(self.bytes_buffered);
        self.current[p].push((kbytes, vbytes));
        if self.bytes_buffered >= self.buffer_limit {
            self.spill(combiner, counters);
        }
    }

    fn spill<K: SortableKey, V: Writable, C: Combiner<K = K, V = V>>(
        &mut self,
        combiner: Option<&mut C>,
        counters: &mut Counters,
    ) {
        if self.bytes_buffered == 0 {
            return;
        }
        let mut combiner = combiner;
        let mut spill = Vec::with_capacity(self.num_partitions);
        for part in self.current.iter_mut() {
            let mut run = std::mem::take(part);
            // Stable by-key sort: equal keys keep collect order.
            run.sort_by(|a, b| a.0.cmp(&b.0));
            counters.incr_task(TaskCounter::SpilledRecords, run.len() as u64);
            let run = match combiner.as_deref_mut() {
                Some(c) => ref_combine(group_pairs(run), c, counters),
                None => run,
            };
            self.spill_bytes_written += pairs_bytes(&run);
            spill.push(run);
        }
        self.spills.push(spill);
        self.bytes_buffered = 0;
    }

    fn finish<K: SortableKey, V: Writable, C: Combiner<K = K, V = V>>(
        mut self,
        combiner: Option<&mut C>,
        counters: &mut Counters,
    ) -> RefOutput {
        let mut combiner = combiner;
        self.spill(combiner.as_deref_mut(), counters);
        let num_spills = self.spills.len() as u32;
        let mut partitions = Vec::with_capacity(self.num_partitions);
        let mut read = 0u64;
        let mut written = 0u64;
        for p in 0..self.num_partitions {
            let runs: Vec<Vec<Pair>> =
                self.spills.iter_mut().map(|s| std::mem::take(&mut s[p])).collect();
            let out = if runs.len() == 1 {
                runs.into_iter().next().unwrap()
            } else if runs.is_empty() {
                Vec::new()
            } else {
                read += runs.iter().map(|r| pairs_bytes(r)).sum::<u64>();
                // Reference merge: concatenate in run order, stable sort by
                // key — exactly "run order, then intra-run order" grouping.
                let mut all: Vec<Pair> = runs.into_iter().flatten().collect();
                all.sort_by(|a, b| a.0.cmp(&b.0));
                let out = match combiner.as_deref_mut() {
                    Some(c) => ref_combine(group_pairs(all), c, counters),
                    None => all,
                };
                written += pairs_bytes(&out);
                out
            };
            partitions.push(out);
        }
        RefOutput {
            partitions,
            spill_bytes_written: self.spill_bytes_written + written,
            spill_bytes_read: read,
            num_spills,
            peak_buffered: self.peak_buffered,
        }
    }
}

fn group_pairs(run: Vec<Pair>) -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
    let mut groups: Vec<(Vec<u8>, Vec<Vec<u8>>)> = Vec::new();
    for (k, v) in run {
        match groups.last_mut() {
            Some((gk, vs)) if *gk == k => vs.push(v),
            _ => groups.push((k, vec![v])),
        }
    }
    groups
}

fn ref_combine<K: SortableKey, V: Writable, C: Combiner<K = K, V = V>>(
    groups: Vec<(Vec<u8>, Vec<Vec<u8>>)>,
    combiner: &mut C,
    counters: &mut Counters,
) -> Vec<Pair> {
    let mut out = Vec::new();
    for (kbytes, vlist) in groups {
        let mut ks = kbytes.as_slice();
        let key = K::decode_ordered(&mut ks).unwrap();
        let values: Vec<V> = vlist.iter().map(|b| V::from_bytes(b).unwrap()).collect();
        counters.incr_task(TaskCounter::CombineInputRecords, values.len() as u64);
        let mut folded = Vec::new();
        combiner.combine(&key, values, &mut folded);
        counters.incr_task(TaskCounter::CombineOutputRecords, folded.len() as u64);
        for v in folded {
            out.push((kbytes.clone(), v.to_bytes()));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Driving both pipelines
// ---------------------------------------------------------------------------

struct SumCombiner;
impl Combiner for SumCombiner {
    type K = String;
    type V = u64;
    fn combine(&mut self, _k: &String, values: Vec<u64>, out: &mut Vec<u64>) {
        out.push(values.into_iter().sum());
    }
}

/// Run the arena pipeline and the reference pipeline over the same input
/// and assert byte-identical output plus identical accounting.
fn assert_equivalent(pairs: &[(String, u64)], parts: usize, limit: usize, combine: bool) {
    let ctx = format!("parts={parts} limit={limit} combine={combine} n={}", pairs.len());

    let mut counters = Counters::new();
    let mut buf: SortBuffer<String, u64> = SortBuffer::new(parts, limit);
    let mut c1 = combine.then_some(SumCombiner);
    for (k, v) in pairs {
        buf.collect(k, v, c1.as_mut(), &mut counters);
    }
    let peak = buf.peak_buffered;
    let out = buf.finish(c1.as_mut(), &mut counters);

    let mut ref_counters = Counters::new();
    let mut rbuf = RefBuffer::new(parts, limit);
    let mut c2 = combine.then_some(SumCombiner);
    for (k, v) in pairs {
        rbuf.collect(k, v, c2.as_mut(), &mut ref_counters);
    }
    let rout = rbuf.finish(c2.as_mut(), &mut ref_counters);

    assert_eq!(out.partitions.len(), rout.partitions.len(), "{ctx}");
    for p in 0..parts {
        assert_eq!(out.partitions[p].to_pairs(), rout.partitions[p], "partition {p}: {ctx}");
    }
    assert_eq!(out.num_spills, rout.num_spills, "num_spills: {ctx}");
    assert_eq!(out.spill_bytes_written, rout.spill_bytes_written, "spill_bytes_written: {ctx}");
    assert_eq!(out.spill_bytes_read, rout.spill_bytes_read, "spill_bytes_read: {ctx}");
    assert_eq!(peak, rout.peak_buffered, "peak_buffered: {ctx}");
    assert_eq!(counters, ref_counters, "counters: {ctx}");
}

fn no_combiner_equivalent(pairs: &[(String, u64)], parts: usize, limit: usize) {
    // Same as assert_equivalent but through the NoCombiner path.
    let mut counters = Counters::new();
    let mut buf: SortBuffer<String, u64> = SortBuffer::new(parts, limit);
    for (k, v) in pairs {
        buf.collect::<NoCombiner<String, u64>>(k, v, None, &mut counters);
    }
    let out = buf.finish::<NoCombiner<String, u64>>(None, &mut counters);

    let mut ref_counters = Counters::new();
    let mut rbuf = RefBuffer::new(parts, limit);
    for (k, v) in pairs {
        rbuf.collect::<String, u64, NoCombiner<String, u64>>(k, v, None, &mut ref_counters);
    }
    let rout = rbuf.finish::<String, u64, NoCombiner<String, u64>>(None, &mut ref_counters);
    for p in 0..parts {
        assert_eq!(out.partitions[p].to_pairs(), rout.partitions[p], "partition {p}");
    }
    assert_eq!(out.spill_bytes_written, rout.spill_bytes_written);
    assert_eq!(out.spill_bytes_read, rout.spill_bytes_read);
    assert_eq!(counters, ref_counters);
}

/// splitmix64 — deterministic inputs without a rand dependency.
struct Prng(u64);
impl Prng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn gen_pairs(rng: &mut Prng, n: usize, vocab: usize) -> Vec<(String, u64)> {
    (0..n)
        .map(|_| (format!("w{:03}", rng.next() as usize % vocab.max(1)), rng.next() % 1000))
        .collect()
}

#[test]
fn seeded_sweep_matches_reference() {
    let mut rng = Prng(0xC0FFEE);
    for case in 0..120u64 {
        let n = (rng.next() % 250) as usize;
        let vocab = 1 + (rng.next() % 40) as usize;
        let parts = 1 + (rng.next() % 4) as usize;
        let limit = 16 + (rng.next() % 2048) as usize;
        let pairs = gen_pairs(&mut rng, n, vocab);
        if case % 2 == 0 {
            assert_equivalent(&pairs, parts, limit, case % 4 == 0);
        } else {
            no_combiner_equivalent(&pairs, parts, limit);
        }
    }
}

#[test]
fn single_record_and_empty_edge_cases() {
    assert_equivalent(&[], 3, 64, true);
    assert_equivalent(&[("only".into(), 7)], 1, 1, true);
    no_combiner_equivalent(&[("only".into(), 7)], 2, 1);
    // Every record forces a spill: num_spills == records, merge re-reads.
    let pairs: Vec<(String, u64)> = (0..20).map(|i| (format!("k{}", i % 3), i)).collect();
    assert_equivalent(&pairs, 2, 1, true);
    no_combiner_equivalent(&pairs, 2, 1);
}

proptest::proptest! {
    #[test]
    fn prop_arena_pipeline_matches_reference(
        raw in proptest::collection::vec(("[a-h]{1,4}", 0u64..500), 0..200),
        parts in 1usize..5,
        limit in 16usize..4096,
        combine in proptest::prelude::any::<bool>(),
    ) {
        let pairs: Vec<(String, u64)> = raw;
        if combine {
            assert_equivalent(&pairs, parts, limit, true);
        } else {
            no_combiner_equivalent(&pairs, parts, limit);
        }
    }
}

// ---------------------------------------------------------------------------
// Parallel reduce == serial reduce
// ---------------------------------------------------------------------------

struct WcMap;
impl Mapper for WcMap {
    type KOut = String;
    type VOut = u64;
    fn map(&mut self, _o: u64, line: &str, ctx: &mut MapContext<String, u64>) {
        for w in line.split_whitespace() {
            ctx.emit(w.to_string(), 1);
        }
    }
}
struct WcReduce;
impl Reducer for WcReduce {
    type KIn = String;
    type VIn = u64;
    fn reduce(&mut self, key: String, values: Vec<u64>, ctx: &mut ReduceContext) {
        ctx.emit(key, values.into_iter().sum::<u64>());
    }
}

#[test]
fn parallel_reduce_equals_serial_exactly() {
    let mut rng = Prng(42);
    let mut text = String::new();
    for i in 0..30_000u64 {
        text.push_str(&format!("word{:03}", rng.next() % 500));
        text.push(if i % 9 == 8 { '\n' } else { ' ' });
    }
    let conf = JobConf::new("wc-par").input("i").output("o").reduces(4);
    let job = Job::new(conf, || WcMap, || WcReduce);
    let inputs = vec![("in.txt".to_string(), text.into_bytes())];

    let mut serial = LocalRunner::serial();
    serial.split_bytes = 16 * 1024; // many map tasks
    let s = serial.run(&job, &inputs, &SideFiles::new()).unwrap();

    let mut parallel = LocalRunner::parallel(8);
    parallel.split_bytes = 16 * 1024;
    let p = parallel.run(&job, &inputs, &SideFiles::new()).unwrap();

    // Output must match *in order*, not just as a multiset: reduce results
    // are delivered in partition index order regardless of which lane
    // finished first.
    assert_eq!(s.output, p.output);
    assert_eq!(s.counters, p.counters);
    assert!(p.virtual_time <= s.virtual_time, "more lanes never slower in virtual time");
}
