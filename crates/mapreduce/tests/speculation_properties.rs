//! Output-neutrality properties for speculative execution.
//!
//! Speculation is a *latency* mechanism: racing a second attempt of a
//! straggling task must never change what the job computes. These
//! properties drive the full cluster engine across randomly skewed
//! heterogeneous clusters and check, for every skew profile and seed:
//!
//! * the cluster's output is byte-identical (CRC-checked) to the
//!   `LocalJobRunner` ground truth with speculation **on**, and
//! * on a homogeneous cluster, disabling speculation is byte-stable —
//!   spec-on and spec-off produce the same bytes (on uniform hardware a
//!   well-behaved speculator should rarely even launch).

use hl_cluster::node::{ClusterSpec, DegradeModel, HeterogeneousClusterSpec, PerfProfile};
use hl_common::checksum::Crc32;
use hl_common::config::{keys, Configuration};
use hl_common::prelude::*;
use hl_mapreduce::api::{MapContext, Mapper, ReduceContext, Reducer, SideFiles};
use hl_mapreduce::job::{Job, JobConf};
use hl_mapreduce::local::LocalRunner;
use hl_mapreduce::MrCluster;

struct WcMap;
impl Mapper for WcMap {
    type KOut = String;
    type VOut = u64;
    fn map(&mut self, _o: u64, line: &str, ctx: &mut MapContext<String, u64>) {
        for w in line.split_whitespace() {
            ctx.emit(w.to_string(), 1);
        }
    }
}

struct WcReduce;
impl Reducer for WcReduce {
    type KIn = String;
    type VIn = u64;
    fn reduce(&mut self, key: String, values: Vec<u64>, ctx: &mut ReduceContext) {
        ctx.emit(key, values.into_iter().sum::<u64>());
    }
}

/// splitmix64 — deterministic randomness without a rand dependency.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn gen_text(seed: u64, words: usize, vocab: usize) -> String {
    let mut state = seed;
    let mut s = String::new();
    for i in 0..words {
        s.push_str(&format!("w{:03}", splitmix(&mut state) as usize % vocab.max(1)));
        s.push(if i % 11 == 10 { '\n' } else { ' ' });
    }
    s.push('\n');
    s
}

const NODES: usize = 6;

/// A random degrade model drawn from the seed: a static throttle, an
/// early-onset decay, or a transient window — all at test timescale so
/// they actually shape the (few-second) jobs the property runs.
fn random_model(state: &mut u64) -> DegradeModel {
    let bp = 500 + (splitmix(state) % 6_000) as u32;
    match splitmix(state) % 3 {
        0 => DegradeModel::Static(PerfProfile::uniform(bp)),
        1 => DegradeModel::Decay {
            from: SimTime(splitmix(state) % 2_000_000),
            ramp: SimDuration(500_000 + splitmix(state) % 4_000_000),
            floor: PerfProfile::uniform(bp),
        },
        _ => DegradeModel::Window {
            from: SimTime(splitmix(state) % 2_000_000),
            until: SimTime(2_000_000 + splitmix(state) % 5_000_000),
            during: PerfProfile::uniform(bp),
        },
    }
}

/// Build a cluster; `skew_seed` draws 1–3 random degrade models.
fn cluster(skew_seed: Option<u64>) -> MrCluster {
    let mut config = Configuration::with_defaults();
    config.set(keys::DFS_BLOCK_SIZE, 4096u64);
    let base = ClusterSpec::course_hadoop(NODES);
    match skew_seed {
        Some(seed) => {
            let mut state = seed;
            let mut spec = HeterogeneousClusterSpec::new(base);
            for _ in 0..=(splitmix(&mut state) % 3) {
                let node = NodeId((splitmix(&mut state) % NODES as u64) as u32);
                let model = random_model(&mut state);
                spec = spec.with_model(node, model);
            }
            MrCluster::new_heterogeneous(&spec, config).unwrap()
        }
        None => MrCluster::new(base, config).unwrap(),
    }
}

fn wc_conf(speculative: bool) -> JobConf {
    let mut conf = JobConf::new("spec-prop").input("/in/data.txt").output("/out/wc").reduces(3);
    conf = conf.speculative(speculative);
    // Test timescale: tasks finish in well under the 3 s default heartbeat,
    // so tighten it (and the cap) to give the speculator a real chance to
    // launch under skew — the property must hold *with* speculation active.
    conf.spec_heartbeat = SimDuration::from_millis(100);
    conf.spec_cap_pct = 30;
    conf
}

/// Run wordcount on the given cluster and return the concatenated output.
fn run_on_cluster(mut c: MrCluster, text: &str, speculative: bool) -> (String, u64) {
    c.dfs.namenode.mkdirs("/in").unwrap();
    let t = c.now;
    let put = c.dfs.put(&mut c.net, t, "/in/data.txt", text.as_bytes(), None).unwrap();
    c.now = put.completed_at;
    let job = Job::new(wc_conf(speculative), || WcMap, || WcReduce);
    let report = c.run_job(&job).unwrap();
    assert!(report.success);
    let launched = c.metrics_snapshot().counter("jobtracker", "spec.launched");
    (c.read_output("/out/wc").unwrap(), launched)
}

/// The `LocalJobRunner` ground truth for the same job shape (same reduce
/// count and default partitioner ⇒ same partition order ⇒ same bytes).
fn local_truth(text: &str) -> String {
    let job = Job::new(wc_conf(false), || WcMap, || WcReduce);
    let report = LocalRunner::serial()
        .run(&job, &[("data.txt".to_string(), text.as_bytes().to_vec())], &SideFiles::new())
        .unwrap();
    let mut out = report.output.join("\n");
    out.push('\n');
    out
}

fn crc(s: &str) -> u32 {
    Crc32::checksum(s.as_bytes())
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig {
        cases: 12,
        ..proptest::prelude::ProptestConfig::default()
    })]

    /// Across random skew profiles and corpora, speculation never changes
    /// job output: the cluster's bytes CRC-match the LocalJobRunner's.
    #[test]
    fn prop_speculation_is_output_neutral_under_skew(
        seed in proptest::prelude::any::<u64>(),
        words in 400usize..1500,
        vocab in 5usize..60,
    ) {
        let text = gen_text(seed, words, vocab);
        let (out, _) = run_on_cluster(cluster(Some(seed)), &text, true);
        let truth = local_truth(&text);
        proptest::prop_assert_eq!(crc(&out), crc(&truth), "skew seed {}", seed);
        proptest::prop_assert_eq!(out, truth);
    }

    /// On homogeneous clusters, flipping speculation off is byte-stable.
    #[test]
    fn prop_disabling_speculation_is_byte_stable_when_homogeneous(
        seed in proptest::prelude::any::<u64>(),
        words in 400usize..1500,
        vocab in 5usize..60,
    ) {
        let text = gen_text(seed, words, vocab);
        let (with_spec, _) = run_on_cluster(cluster(None), &text, true);
        let (without, launched_off) = run_on_cluster(cluster(None), &text, false);
        proptest::prop_assert_eq!(launched_off, 0, "spec-off must launch nothing");
        proptest::prop_assert_eq!(crc(&with_spec), crc(&without));
        proptest::prop_assert_eq!(with_spec, without);
    }
}

/// A pinned heavy-skew case that reliably launches (and wins) speculative
/// attempts, proving the properties above exercise speculation for real
/// rather than passing vacuously.
#[test]
fn skewed_cluster_actually_speculates_and_stays_correct() {
    let text = gen_text(7, 16_000, 30);
    let mut config = Configuration::with_defaults();
    config.set(keys::DFS_BLOCK_SIZE, 4096u64);
    // Every node holds a replica, so rescue attempts read locally instead
    // of queueing on the straggler's disk.
    config.set(keys::DFS_REPLICATION, NODES as u64);
    let spec = HeterogeneousClusterSpec::new(ClusterSpec::course_hadoop(NODES))
        .with_model(NodeId(1), DegradeModel::Static(PerfProfile::uniform(2_000)));
    let c = MrCluster::new_heterogeneous(&spec, config).unwrap();
    let (out, launched) = run_on_cluster(c, &text, true);
    assert!(launched > 0, "a 5x straggler tier must trigger speculation");
    assert_eq!(out, local_truth(&text));
}
