//! The ecosystem lecture, runnable: an HBase-flavored table over HDFS.
//!
//! "We also spent one lecture introducing HBase/Hive to the students to
//! provide a more comprehensive view of the Hadoop ecosystem." This demo
//! loads MovieLens rows into a table, shows random reads (the thing
//! MapReduce can't do), flush/compaction mechanics, and that the table's
//! files are ordinary replicated HDFS files underneath.
//!
//! ```text
//! cargo run --example hbase_lecture
//! ```

use hadoop_lab::cluster::network::ClusterNet;
use hadoop_lab::cluster::node::ClusterSpec;
use hadoop_lab::common::config::{keys, Configuration};
use hadoop_lab::common::simtime::SimTime;
use hadoop_lab::datagen::movielens::{parse_movie, MovieLensGen};
use hadoop_lab::dfs::client::Dfs;
use hadoop_lab::hbase::HTable;

fn main() {
    let spec = ClusterSpec::course_hadoop(8);
    let mut config = Configuration::with_defaults();
    config.set(keys::DFS_BLOCK_SIZE, 64 * 1024u64);
    let mut dfs = Dfs::format(&config, &spec).expect("format");
    let mut net = ClusterNet::new(&spec);

    // Load the movie catalog as rows: rowkey = movie id, columns = fields.
    let data = MovieLensGen::new(42).with_sizes(300, 100).generate(1_000);
    let mut table = HTable::create(&mut dfs, "movies").expect("create table");
    table.split_threshold = 400;
    let mut now = SimTime::ZERO;
    let mut loaded = 0;
    for line in data.movies.lines() {
        let (id, genres) = parse_movie(line).expect("movie row");
        let row = format!("movie{id:05}");
        now = table.put(&mut dfs, &mut net, now, &row, "genres", genres.join("|")).unwrap();
        now = table.put(&mut dfs, &mut net, now, &row, "title", format!("Movie {id}")).unwrap();
        loaded += 1;
    }
    println!("loaded {loaded} movies into 'movies' ({} region(s))", table.regions.len());

    // Random read — the access pattern HDFS+MapReduce alone cannot serve.
    let probe = "movie00042";
    println!(
        "get({probe}, genres) = {:?}",
        table.get(probe, "genres").map(|v| String::from_utf8_lossy(&v).into_owned())
    );

    // Update + delete semantics.
    now = table.put(&mut dfs, &mut net, now, probe, "title", "Movie 42 (remastered)").unwrap();
    println!(
        "after update: title = {:?}",
        table.get(probe, "title").map(|v| String::from_utf8_lossy(&v).into_owned())
    );
    now = table.delete(&mut dfs, &mut net, now, probe, "genres").unwrap();
    println!("after delete: genres = {:?}", table.get(probe, "genres"));

    // Flush + compact, then show the files ARE HDFS files.
    now = table.flush_all(&mut dfs, &mut net, now).unwrap();
    now = table.compact_all(&mut dfs, &mut net, now).unwrap();
    println!("\nHFiles on HDFS after compaction:");
    for region in &table.regions {
        for hf in &region.hfiles {
            let blocks = dfs.file_blocks(&hf.path).unwrap();
            println!(
                "  {}  ({} cells, {} HDFS block(s), 3x replicated)",
                hf.path,
                hf.cells.len(),
                blocks.len()
            );
        }
    }

    // A short scan: ordered row ranges come free with range partitioning.
    println!("\nscan movie00100..movie00105:");
    for (row, col, v) in table.scan("movie00100", Some("movie00105")) {
        println!("  {row} {col} = {}", String::from_utf8_lossy(&v));
    }
    let _ = now;
}
