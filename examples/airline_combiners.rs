//! The MapReduce lab's three airline-delay implementations, compared —
//! the "Monoidify!" lesson: plain vs combiner + custom value class vs
//! in-mapper combining.
//!
//! ```text
//! cargo run --example airline_combiners
//! ```

use hadoop_lab::cluster::node::ClusterSpec;
use hadoop_lab::common::config::{keys, Configuration};
use hadoop_lab::common::counters::TaskCounter;
use hadoop_lab::common::units::ByteSize;
use hadoop_lab::datagen::airline::AirlineGen;
use hadoop_lab::mapreduce::engine::MrCluster;
use hadoop_lab::workloads::airline;

fn main() {
    let (csv, truth) = AirlineGen::new(2008).generate(100_000);
    println!("generated {} flights ({})", 100_000, ByteSize::display(csv.len() as u64));
    println!("ground truth: best carrier = {:?}\n", truth.best_carrier().unwrap());

    for (name, which) in [("V1 plain", 0), ("V2 combiner + SumCount", 1), ("V3 in-mapper", 2)] {
        let mut config = Configuration::with_defaults();
        config.set(keys::DFS_BLOCK_SIZE, 1024 * 1024u64);
        let mut cluster = MrCluster::new(ClusterSpec::course_hadoop(8), config).unwrap();
        cluster.dfs.namenode.mkdirs("/in").unwrap();
        let t = cluster.now;
        let put =
            cluster.dfs.put(&mut cluster.net, t, "/in/2008.csv", csv.as_bytes(), None).unwrap();
        cluster.now = put.completed_at;

        let report = match which {
            0 => cluster.run_job(&airline::avg_delay_plain("/in/2008.csv", "/out")),
            1 => cluster.run_job(&airline::avg_delay_combiner("/in/2008.csv", "/out")),
            _ => cluster.run_job(&airline::avg_delay_inmapper("/in/2008.csv", "/out")),
        }
        .expect("job");

        println!("== {name} ==");
        println!(
            "  map output records: {:>8}   shuffle: {:>10}   job time: {}",
            report.counters.task(TaskCounter::MapOutputRecords),
            ByteSize::display(report.shuffle_bytes()).to_string(),
            report.elapsed(),
        );
        let out = cluster.read_output("/out").unwrap();
        let parsed = airline::parse_output(&out.lines().map(str::to_string).collect::<Vec<_>>());
        let mut best: Vec<(&String, &f64)> = parsed.iter().collect();
        best.sort_by(|a, b| a.1.total_cmp(b.1));
        println!("  best carrier by avg delay: {} ({:.2} min)\n", best[0].0, best[0].1);
    }
}
