//! The HDFS in-class lab: the `hadoop fs` shell session assignment 2 asks
//! students to run and record, including `fsck` before and after injected
//! corruption, and a DataNode death with automatic re-replication.
//!
//! ```text
//! cargo run --example hdfs_lab
//! ```

use hadoop_lab::cluster::network::ClusterNet;
use hadoop_lab::cluster::node::ClusterSpec;
use hadoop_lab::common::config::{keys, Configuration};
use hadoop_lab::common::simtime::{SimDuration, SimTime};
use hadoop_lab::dfs::client::Dfs;
use hadoop_lab::dfs::shell::{DfsShell, LocalFs};

fn main() {
    let spec = ClusterSpec::course_hadoop(8);
    let mut config = Configuration::with_defaults();
    config.set(keys::DFS_BLOCK_SIZE, 4096u64); // small blocks so the lab shows many
    let mut dfs = Dfs::format(&config, &spec).expect("format");
    let mut net = ClusterNet::new(&spec);
    let mut local = LocalFs::new();
    local.write("airline_sample.csv", {
        let (csv, _) = hadoop_lab::datagen::airline::AirlineGen::new(1).generate(500);
        csv.into_bytes()
    });

    let mut shell = DfsShell { dfs: &mut dfs, net: &mut net, local: &mut local };
    let mut now = SimTime::ZERO;
    for cmd in [
        "-mkdir /user/student/input",
        "-put airline_sample.csv /user/student/input/2008.csv",
        "-ls /user/student/input",
        "-du /user/student",
        "-fsck /user/student",
    ] {
        println!("$ hadoop fs {cmd}");
        let out = shell.run(now, cmd).expect(cmd);
        print!("{}", out.stdout);
        now = out.completed_at;
        println!();
    }

    // Corrupt one replica behind HDFS's back; a read transparently fails
    // over and the bad replica is reported + re-replicated.
    let (block, _, holders) =
        shell.dfs.file_blocks("/user/student/input/2008.csv").unwrap()[0].clone();
    println!("~ flipping a byte of {block} on {}", holders[0]);
    shell.dfs.datanode_mut(holders[0]).unwrap().corrupt_block(block, 123);
    let got = shell.dfs.read(shell.net, now, "/user/student/input/2008.csv", None).unwrap();
    println!("~ read still returned {} clean bytes (checksum failover)", got.value.len());
    shell.dfs.heartbeat_round(shell.net, got.completed_at);
    println!(
        "~ after one heartbeat round, replicas: {:?}\n",
        shell.dfs.namenode.block_locations(block).len()
    );

    // Kill a DataNode; watch the replication monitor heal the cluster.
    let victim = holders[1];
    println!("~ crashing datanode on {victim}");
    shell.dfs.crash_datanode(victim);
    let mut t = got.completed_at;
    for _ in 0..220 {
        t += SimDuration::from_secs(3);
        shell.dfs.heartbeat_round(shell.net, t);
    }
    println!("~ at {t}: under-replicated blocks: {}", shell.dfs.namenode.under_replicated().len());
    let out = shell.run(t, "-fsck /user/student").unwrap();
    print!("{}", out.stdout);
}
