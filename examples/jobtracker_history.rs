//! A session's worth of jobs on one cluster, then the JobTracker history
//! page — plus the Pairs-vs-Stripes co-occurrence comparison from the Lin
//! lecture notes the course followed.
//!
//! ```text
//! cargo run --example jobtracker_history
//! ```

use hadoop_lab::cluster::node::ClusterSpec;
use hadoop_lab::common::config::{keys, Configuration};
use hadoop_lab::common::counters::TaskCounter;
use hadoop_lab::datagen::corpus::CorpusGen;
use hadoop_lab::mapreduce::engine::MrCluster;
use hadoop_lab::workloads::{cooccurrence, wordcount};

fn main() {
    let mut config = Configuration::with_defaults();
    config.set(keys::DFS_BLOCK_SIZE, 64 * 1024u64);
    let mut cluster = MrCluster::new(ClusterSpec::course_hadoop(8), config).unwrap();

    let (text, _) = CorpusGen::new(99).with_vocab(500).generate(50_000);
    cluster.dfs.namenode.mkdirs("/in").unwrap();
    let t = cluster.now;
    let put =
        cluster.dfs.put(&mut cluster.net, t, "/in/corpus.txt", text.as_bytes(), None).unwrap();
    cluster.now = put.completed_at;

    // A realistic session: three WordCount variants, then both
    // co-occurrence implementations.
    cluster.run_job(&wordcount::wordcount("/in/corpus.txt", "/out/wc", 2)).unwrap();
    cluster.run_job(&wordcount::wordcount_combiner("/in/corpus.txt", "/out/wcc", 2)).unwrap();
    cluster.run_job(&wordcount::wordcount_inmapper("/in/corpus.txt", "/out/wci", 2)).unwrap();
    let pairs = cluster.run_job(&cooccurrence::pairs("/in/corpus.txt", "/out/pairs", 4)).unwrap();
    let stripes =
        cluster.run_job(&cooccurrence::stripes("/in/corpus.txt", "/out/stripes", 4)).unwrap();

    println!("{}", cluster.history);

    println!("Pairs vs Stripes (same answer, different systems behaviour):");
    for (name, r) in [("pairs", &pairs), ("stripes", &stripes)] {
        println!(
            "  {name:<8} map-output records {:>9}   shuffle {:>12} B   elapsed {}",
            r.counters.task(TaskCounter::MapOutputRecords),
            r.shuffle_bytes(),
            r.elapsed()
        );
    }
}
