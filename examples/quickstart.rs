//! Quickstart: stand up the course's 8-node Hadoop cluster, stage a text
//! file into HDFS, run WordCount, and read the results — the whole
//! lecture-1 demo in ~30 lines of user code.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hadoop_lab::mapreduce::engine::MrCluster;
use hadoop_lab::workloads::wordcount;

fn main() {
    // The paper's dedicated cluster: 8 nodes, dual 8-core, 64 GB RAM,
    // 850 GB disk, gigabit Ethernet, Hadoop 1.x defaults (64 MB blocks,
    // 3x replication).
    let mut cluster = MrCluster::course_default().expect("cluster");

    // Stage input into HDFS (virtual time is charged; bytes are real).
    let text = "so shaken as we are so wan with care\n\
                find we a time for frighted peace to pant\n\
                and breathe short-winded accents of new broils\n\
                to be commenced in strands afar remote\n"
        .repeat(2000);
    cluster.dfs.namenode.mkdirs("/user/student").expect("mkdir");
    let t = cluster.now;
    let put = cluster
        .dfs
        .put(&mut cluster.net, t, "/user/student/input.txt", text.as_bytes(), None)
        .expect("put");
    cluster.now = put.completed_at;
    println!("staged {} bytes into HDFS in {}", text.len(), put.completed_at.since(t));

    // Run WordCount with the reducer as a combiner.
    let job = wordcount::wordcount_combiner("/user/student/input.txt", "/user/student/out", 2);
    let report = cluster.run_job(&job).expect("job");

    // The JobTracker "web UI" view...
    println!("\n{report}");
    // ...and the final job report students read for the combiner lesson.
    println!("{}", report.final_report());

    // Top 10 words from the output.
    let output = cluster.read_output("/user/student/out").expect("output");
    let mut rows: Vec<(&str, u64)> = output
        .lines()
        .filter_map(|l| {
            let (w, n) = l.split_once('\t')?;
            Some((w, n.parse().ok()?))
        })
        .collect();
    rows.sort_by_key(|&(w, n)| (std::cmp::Reverse(n), w));
    println!("top words:");
    for (w, n) in rows.iter().take(10) {
        println!("  {n:>6}  {w}");
    }
}
