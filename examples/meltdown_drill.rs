//! The Version-1 meltdown, replayed end to end (Section II-A): heap-leaking
//! student jobs crash daemons the night before the deadline, blocks fall
//! under-replicated, the restart sits in safe mode while DataNodes scan,
//! and a block that lost every replica leaves the cluster refusing jobs.
//!
//! ```text
//! cargo run --example meltdown_drill
//! ```

use hadoop_lab::core::experiments::{n6, Scale};

fn main() {
    println!("Replaying the Fall-2012 shared-cluster meltdown...\n");
    let result = n6::run(Scale::Quick);
    println!("{result}");
    println!(
        "\nPaper, Section II-A: \"some of job submissions contained run time errors\n\
         that created memory leaks on the Java heap memory and consequently crashed\n\
         the task tracker and data node daemons. When the Hadoop cluster was\n\
         restarted, it typically took at least fifteen minutes for all the Data\n\
         Nodes to check for data integrity and report back to the Name Node. ...\n\
         we ended up with a corrupted Hadoop cluster that stopped all the new jobs.\"\n\n\
         Run `repro --n6` (Paper scale) for the course-size version, where the\n\
         restart scan takes the paper's quarter-hour."
    );
}
