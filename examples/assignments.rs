//! Reference runs of both course assignments.
//!
//! * Assignment 1 (serial, no HDFS): MovieLens genre statistics with the
//!   naive vs cached side-file join, plus the most-active-user question
//!   with its custom value class.
//! * Assignment 2 (on HDFS): rerun the same jar on the cluster, then the
//!   Yahoo best-album analysis.
//!
//! ```text
//! cargo run --example assignments
//! ```

use hadoop_lab::cluster::node::ClusterSpec;
use hadoop_lab::common::config::{keys, Configuration};
use hadoop_lab::datagen::movielens::MovieLensGen;
use hadoop_lab::datagen::yahoo_music::YahooMusicGen;
use hadoop_lab::mapreduce::api::SideFiles;
use hadoop_lab::mapreduce::engine::MrCluster;
use hadoop_lab::mapreduce::local::LocalRunner;
use hadoop_lab::workloads::{movielens, yahoo};

fn main() {
    // ---------------- Assignment 1: serial, "no HDFS support" ----------
    println!("=== Assignment 1: MovieLens, serial (LocalJobRunner) ===");
    let data = MovieLensGen::new(42).with_sizes(1_000, 500).generate(20_000);
    let inputs = vec![("ratings.dat".to_string(), data.ratings.clone().into_bytes())];
    let mut side = SideFiles::new();
    side.insert("/cache/movies.dat", data.movies.clone().into_bytes());
    let runner = LocalRunner::serial();

    let naive = runner
        .run(&movielens::genre_stats_naive("/i", "/cache/movies.dat", "/o"), &inputs, &side)
        .expect("naive");
    let cached = runner
        .run(&movielens::genre_stats_cached("/i", "/cache/movies.dat", "/o"), &inputs, &side)
        .expect("cached");
    println!("naive side-file access:  {} (virtual)", naive.virtual_time);
    println!("cached side-file object: {} (virtual)", cached.virtual_time);
    println!(
        "-> the assignment's lesson: {:.0}x faster with the cached object\n",
        naive.virtual_time.as_secs_f64() / cached.virtual_time.as_secs_f64()
    );

    let active = runner
        .run(&movielens::most_active_user("/i", "/cache/movies.dat", "/o"), &inputs, &side)
        .expect("part 2");
    println!("most active user (user \\t count \\t favorite genre):");
    println!("  {}", active.output[0]);
    println!("  (ground truth: {:?})\n", data.truth.most_active_user().unwrap());

    // ---------------- Assignment 2: the same jars on HDFS --------------
    println!("=== Assignment 2: rerun on the 8-node cluster + Yahoo albums ===");
    let mut config = Configuration::with_defaults();
    config.set(keys::DFS_BLOCK_SIZE, 512 * 1024u64);
    let mut cluster = MrCluster::new(ClusterSpec::course_hadoop(8), config).unwrap();
    cluster.dfs.namenode.mkdirs("/in").unwrap();
    let t = cluster.now;
    let put = cluster
        .dfs
        .put(&mut cluster.net, t, "/in/ratings.dat", data.ratings.as_bytes(), None)
        .unwrap();
    cluster.now = put.completed_at;
    cluster.register_side_file("/cache/movies.dat", data.movies.into_bytes());
    let report = cluster
        .run_job(&movielens::genre_stats_cached(
            "/in/ratings.dat",
            "/cache/movies.dat",
            "/out/genres",
        ))
        .expect("cluster job");
    println!(
        "same jar on HDFS: {} (vs {} serial) — \"immediate speedup\"",
        report.elapsed(),
        cached.virtual_time
    );

    let ydata = YahooMusicGen::new(7).generate(50_000);
    let t = cluster.now;
    let put = cluster
        .dfs
        .put(&mut cluster.net, t, "/in/song_ratings.txt", ydata.ratings.as_bytes(), None)
        .unwrap();
    cluster.now = put.completed_at;
    cluster.register_side_file("/cache/songs.txt", ydata.songs.into_bytes());
    cluster
        .run_job(&yahoo::best_album("/in/song_ratings.txt", "/cache/songs.txt", "/out/album"))
        .expect("yahoo job");
    let out = cluster.read_output("/out/album").unwrap();
    println!("best album (album \\t avg \\t ratings): {}", out.trim());
    println!("(ground truth: {:?})", ydata.truth.best_album().unwrap());
}
