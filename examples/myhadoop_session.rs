//! A myHadoop session on the shared supercomputer (Section II-B): Alice
//! provisions a dynamic 8-node Hadoop cluster, forgets `stop-all.sh` on
//! the way out, and Bob — landing on the same nodes — hits her ghost
//! daemons and has to wait out the cleanup cron.
//!
//! ```text
//! cargo run --example myhadoop_session
//! ```

use hadoop_lab::provision::{Campus, Session, SessionOutcome, SessionSpec};

fn main() {
    let mut campus = Campus::new(16);

    println!("-- Alice: clean setup, but exits without stopping Hadoop --");
    let mut alice = SessionSpec::diligent("alice");
    alice.forgets_teardown = true;
    match Session::new(alice).run(&mut campus) {
        SessionOutcome::Success { cluster_up, total } => {
            println!("cluster up in {cluster_up}, session done in {total}");
        }
        other => println!("unexpected: {other:?}"),
    }
    println!("ports still bound by ghosts: {}\n", campus.ports.len());

    println!("-- Bob: assigned the same nodes minutes later --");
    let mut bob = SessionSpec::diligent("bob");
    bob.misconfigured_paths = true; // and he got HADOOP_HOME wrong, too
    match Session::new(bob).run(&mut campus) {
        SessionOutcome::Success { cluster_up, total } => {
            println!("cluster up in {cluster_up} (ghost wait + path debugging), total {total}");
        }
        other => println!("unexpected: {other:?}"),
    }

    println!("\n-- the session log (what the scheduler recorded) --");
    for entry in campus.log.entries() {
        println!("[{}] {}: {}", entry.at, entry.source, entry.message);
    }
}
