#!/usr/bin/env bash
# bench-guard: keep perf-baseline moves auditable.
#
# Every commit that touches a BENCH_*.json snapshot must carry the
# "[bench-baseline]" marker in its subject — baselines are regenerated in
# their own commit, never smuggled in with code changes, so the perf-gate
# history stays a readable record of deliberate cost-model moves.
#
# Usage: scripts/bench_guard.sh [<rev-range>]
#   With no range: origin/$GITHUB_BASE_REF...HEAD on pull requests,
#   HEAD~1..HEAD otherwise (push to main lands one commit at a time).
set -euo pipefail

range="${1:-}"
if [ -z "$range" ]; then
  if [ -n "${GITHUB_BASE_REF:-}" ]; then
    git fetch -q origin "$GITHUB_BASE_REF"
    range="origin/${GITHUB_BASE_REF}...HEAD"
  else
    range="HEAD~1..HEAD"
  fi
fi

bad=0
for commit in $(git rev-list "$range" 2>/dev/null); do
  files=$(git diff-tree --no-commit-id --name-only -r "$commit" \
    | grep -E '^BENCH_[A-Za-z0-9_]+\.json$' || true)
  [ -z "$files" ] && continue
  subject=$(git log -1 --format=%s "$commit")
  case "$subject" in
    *"[bench-baseline]"*) ;;
    *)
      echo "::error::commit ${commit:0:12} touches $(echo "$files" | tr '\n' ' ')without [bench-baseline] in its subject: $subject"
      bad=1
      ;;
  esac
done

if [ "$bad" -ne 0 ]; then
  echo "bench-guard: regenerate BENCH_*.json in a dedicated commit whose subject contains [bench-baseline]"
  exit 1
fi
echo "bench-guard: all BENCH_*.json changes in $range carry the [bench-baseline] marker"
