//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the benchmark suite compiling (and its setup code type-checked)
//! without network access to crates.io. Registration is a no-op: bench
//! closures are accepted but not timed, so `cargo test`/CI never pays
//! bench wall-clock. Run the real measurements by restoring the upstream
//! dependency in an online environment.

/// Re-exported measurement hint; identical semantics to upstream.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, _id: &str, _f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self
    }

    pub fn benchmark_group(&mut self, _name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self }
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<I, F>(&mut self, _id: I, _f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self
    }

    pub fn bench_with_input<I, D, F>(&mut self, _id: I, _input: &D, _f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &D),
    {
        self
    }

    pub fn finish(self) {}
}

/// Per-iteration timer handle. The stand-in never invokes the closure.
pub struct Bencher {
    _private: (),
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, _f: F) {}

    pub fn iter_with_setup<S, O, SF: FnMut() -> S, F: FnMut(S) -> O>(&mut self, _setup: SF, _f: F) {
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    _id: String,
}

impl BenchmarkId {
    pub fn new(group: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self { _id: format!("{group}/{param}") }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self { _id: param.to_string() }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Bytes(8));
        group.bench_function("inner", |b| b.iter(|| 2));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &n| b.iter(|| n));
        group.finish();
    }

    #[test]
    fn api_shape_compiles_and_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
