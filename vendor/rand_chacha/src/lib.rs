//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream generator (8 rounds, 64-bit
//! block counter, zero nonce) behind the vendored `rand` traits. The
//! chaos harness only needs a deterministic, well-mixed, seedable
//! stream — it records its own trace hashes, so matching upstream
//! `rand_chacha` output byte-for-byte is not required.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed by a 32-byte seed.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, 64-bit counter, 64-bit zero nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: 4 column rounds then 4 diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (b, (w, s)) in self.buf.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *b = w.wrapping_add(*s);
        }
        // 64-bit little-endian block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        Self { state, buf: [0; 16], idx: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream_across_block_boundary() {
        let mut a = ChaCha8Rng::seed_from_u64(0xdead_beef);
        let mut b = ChaCha8Rng::seed_from_u64(0xdead_beef);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn keystream_is_reasonably_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let trues = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&trues), "p=0.5 gave {trues}/10000");
    }
}
