//! Strategies and the deterministic sampling rng.

/// SplitMix64 stream seeded from the test name and case index, so every
/// run of a given property replays the same inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)`; `hi > lo` required.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(hi > lo, "empty size range {lo}..{hi}");
        let span = (hi - lo) as u128;
        lo + ((self.next_u64() as u128 * span) >> 64) as usize
    }

    fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values. Object-safe so `prop_oneof!` can mix concrete
/// strategy types behind `Box<dyn Strategy>`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Box a strategy for heterogeneous unions (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted union over boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    entries: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(entries: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(!entries.is_empty(), "prop_oneof! needs at least one arm");
        let total = entries.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Self { entries, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = ((rng.next_u64() as u128 * self.total as u128) >> 64) as u64;
        for (w, s) in &self.entries {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        self.entries[self.entries.len() - 1].1.sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Arbitrary bit patterns, NaN excluded (matches upstream's default
        // f64 strategy, which generates every class except NaN).
        loop {
            let candidate = f64::from_bits(rng.next_u64());
            if !candidate.is_nan() {
                return candidate;
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        loop {
            let candidate = f32::from_bits(rng.next_u64() as u32);
            if !candidate.is_nan() {
                return candidate;
            }
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.below(0x20, 0x7f) as u32).unwrap_or('a')
    }
}

/// Strategy wrapper around [`Arbitrary`].
#[derive(Clone, Debug, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// String strategies from a regex subset
// ---------------------------------------------------------------------------

/// Unbounded quantifiers (`*`, `+`) cap their repeat count here.
const STAR_MAX: usize = 8;

#[derive(Clone, Debug)]
enum Atom {
    Lit(char),
    /// `.` or `\PC`: sampled from printable ASCII.
    AnyPrintable,
    /// `[a-z0]`-style class, as inclusive ranges.
    Class(Vec<(char, char)>),
    Group(Vec<(Atom, usize, usize)>),
}

fn parse_seq(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
    in_group: bool,
) -> Vec<(Atom, usize, usize)> {
    let mut seq = Vec::new();
    while let Some(&c) = chars.peek() {
        if in_group && c == ')' {
            chars.next();
            return seq;
        }
        chars.next();
        let atom = match c {
            '.' => Atom::AnyPrintable,
            '\\' => match chars.next() {
                // `\PC`: "not a control character".
                Some('P') => {
                    let category = chars.next();
                    assert_eq!(category, Some('C'), "unsupported \\P category in {pattern:?}");
                    Atom::AnyPrintable
                }
                Some(escaped) => Atom::Lit(escaped),
                None => panic!("dangling escape in {pattern:?}"),
            },
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo =
                        chars.next().unwrap_or_else(|| panic!("unclosed class in {pattern:?}"));
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi =
                            chars.next().unwrap_or_else(|| panic!("unclosed class in {pattern:?}"));
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty class in {pattern:?}");
                Atom::Class(ranges)
            }
            '(' => Atom::Group(parse_seq(chars, pattern, true)),
            lit => Atom::Lit(lit),
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('*') => {
                chars.next();
                (0, STAR_MAX)
            }
            Some('+') => {
                chars.next();
                (1, STAR_MAX)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                if let Some((lo, hi)) = spec.split_once(',') {
                    let lo: usize = lo.trim().parse().expect("bad {n,m} quantifier");
                    let hi: usize = hi.trim().parse().expect("bad {n,m} quantifier");
                    assert!(lo <= hi, "bad quantifier in {pattern:?}");
                    (lo, hi)
                } else {
                    let n: usize = spec.trim().parse().expect("bad {n} quantifier");
                    (n, n)
                }
            }
            _ => (1, 1),
        };
        seq.push((atom, min, max));
    }
    assert!(!in_group, "unclosed group in {pattern:?}");
    seq
}

fn sample_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Lit(c) => out.push(*c),
        Atom::AnyPrintable => out.push((rng.below(0x20, 0x7f) as u8) as char),
        Atom::Class(ranges) => {
            let idx = rng.below(0, ranges.len());
            let (lo, hi) = ranges[idx];
            let c = char::from_u32(rng.below(lo as usize, hi as usize + 1) as u32)
                .expect("class sampled a surrogate");
            out.push(c);
        }
        Atom::Group(seq) => sample_seq(seq, rng, out),
    }
}

fn sample_seq(seq: &[(Atom, usize, usize)], rng: &mut TestRng, out: &mut String) {
    for (atom, min, max) in seq {
        let count = if min == max { *min } else { rng.below(*min, *max + 1) };
        for _ in 0..count {
            sample_atom(atom, rng, out);
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let seq = parse_seq(&mut self.chars().peekable(), self, false);
        let mut out = String::new();
        sample_seq(&seq, rng, &mut out);
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        self.as_str().sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::for_case("regex", 0);
        for _ in 0..200 {
            let s = "[a-h]{1,4}".sample(&mut rng);
            assert!((1..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='h').contains(&c)), "{s:?}");

            let t = "[a-d]{1,4}( [a-d]{1,4}){0,6}".sample(&mut rng);
            for tok in t.split(' ') {
                assert!((1..=4).contains(&tok.len()), "{t:?}");
            }

            let u = "\\PC*".sample(&mut rng);
            assert!(u.chars().all(|c| !c.is_control()), "{u:?}");

            let v = ".*".sample(&mut rng);
            assert!(v.len() <= STAR_MAX);
        }
    }

    #[test]
    fn union_respects_zero_weight_tail() {
        let u = Union::new(vec![(1, boxed(Just(7u8)))]);
        let mut rng = TestRng::for_case("union", 0);
        for _ in 0..20 {
            assert_eq!(u.sample(&mut rng), 7);
        }
    }

    #[test]
    fn int_ranges_cover_bounds_eventually() {
        let mut rng = TestRng::for_case("bounds", 0);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..400 {
            seen.insert((0u8..4).sample(&mut rng));
        }
        assert_eq!(seen.len(), 4);
    }
}
