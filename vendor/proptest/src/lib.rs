//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without network access, so real proptest cannot
//! be fetched. This crate re-implements the API subset the workspace
//! uses: the `proptest!` macro (with `#![proptest_config]`, `name in
//! strategy` and `name: type` parameters), `Strategy` with `prop_map`,
//! range / tuple / `Just` / `any::<T>()` / string-regex strategies,
//! `collection::vec`, weighted `prop_oneof!`, and the `prop_assert*`
//! macros.
//!
//! Differences from upstream, on purpose:
//! * no shrinking — a failing case panics with the seed-derived inputs,
//!   which are already deterministic per test name and case index;
//! * string strategies support the regex subset actually used here
//!   (literals, `.`, `\PC`, `[a-z]` classes, groups, `*`, `+`, `{n,m}`);
//! * sampling is driven by a fixed SplitMix64 stream per test, so runs
//!   are reproducible without a persistence file.

pub mod strategy;

pub use strategy::{Arbitrary, Just, Strategy, TestRng, Union};

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.below(self.size.start, self.size.end);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration. Only `cases` matters to the stand-in; the other
/// fields keep `..ProptestConfig::default()` struct-update syntax working.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, max_shrink_iters: 0 }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::any;

/// Property assertion; panics (no shrink phase to report into).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( ($weight as u32, $crate::strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (1u32, $crate::strategy::boxed($strat)) ),+
        ])
    };
}

/// The property-test entry macro. Expands each `fn` into a `#[test]`
/// (attributes are passed through) that samples its parameters from the
/// given strategies for `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __proptest_cfg: $crate::ProptestConfig = $cfg;
            for __proptest_case in 0..__proptest_cfg.cases {
                let mut __proptest_rng =
                    $crate::TestRng::for_case(stringify!($name), __proptest_case);
                $crate::__proptest_bind! { __proptest_rng; $($params)* }
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; ) => {};
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(u8, u8),
        Flush,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0u8..20, 0u8..3).prop_map(|(r, c)| Op::Put(r, c)),
            1 => Just(Op::Flush),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_bare_types(x in 1usize..9, y: bool, z in -4i64..4) {
            prop_assert!((1..9).contains(&x));
            prop_assert!((-4..4).contains(&z));
            let _ = y;
        }

        #[test]
        fn vec_and_regex_strategies(
            words in crate::collection::vec("[a-d]{1,4}( [a-d]{1,4}){0,6}", 1..30),
            raw in crate::collection::vec(("[a-h]{1,4}", 0u64..500), 0..50),
            data in crate::collection::vec(any::<u8>(), 0..200),
        ) {
            prop_assert!((1..30).contains(&words.len()));
            for w in &words {
                for tok in w.split(' ') {
                    prop_assert!((1..=4).contains(&tok.len()), "token {tok:?}");
                    prop_assert!(tok.chars().all(|c| ('a'..='d').contains(&c)));
                }
            }
            for (k, v) in &raw {
                prop_assert!((1..=4).contains(&k.len()));
                prop_assert!(*v < 500);
            }
            prop_assert!(data.len() < 200);
        }

        #[test]
        fn oneof_and_floats(ops in crate::collection::vec(op_strategy(), 1..80), f in -1e6f64..1e6) {
            prop_assert!(!ops.is_empty());
            prop_assert!((-1e6..1e6).contains(&f));
            prop_assert!(ops.iter().any(|_| true));
        }
    }

    #[test]
    fn deterministic_per_test_and_case() {
        let a = crate::Strategy::sample(&(".*"), &mut crate::TestRng::for_case("t", 3));
        let b = crate::Strategy::sample(&(".*"), &mut crate::TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }
}
