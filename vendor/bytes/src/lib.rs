//! Offline stand-in for the `bytes` crate.
//!
//! The workspace builds without network access, so the real crates.io
//! `bytes` cannot be fetched. This crate implements the small API subset
//! the workspace actually uses: an immutable, cheaply cloneable byte
//! buffer backed by an `Arc`, with zero-copy `slice`.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable view into shared byte storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy `src` into a fresh shared buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self::from(src.to_vec())
    }

    /// Buffer over a static slice (copied; the stand-in keeps one repr).
    pub fn from_static(src: &'static [u8]) -> Self {
        Self::copy_from_slice(src)
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-view sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds");
        Self { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Self { data, start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage_and_bounds_check() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let ss = s.slice(1..);
        assert_eq!(&ss[..], &[3, 4]);
    }

    #[test]
    fn equality_with_vec_and_slice() {
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(b, b"abc".to_vec());
        assert_eq!(b, b"abc"[..]);
        assert!(b.clone() == b);
    }
}
