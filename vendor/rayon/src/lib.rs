//! Offline stand-in for the `rayon` crate.
//!
//! The workspace builds without network access, so real rayon cannot be
//! fetched. The LocalJobRunner's *virtual* time model already computes
//! multi-lane speedup analytically (`schedule_lanes`), so correctness and
//! the reported simulated times are unchanged if the closures execute
//! sequentially — only host wall-clock parallelism is lost. This crate
//! keeps the rayon API shape and runs everything in order, which also
//! makes parallel sections fully deterministic.

/// Parallel-iterator traits, resolved to ordinary sequential iterators.
pub mod prelude {
    /// `.par_iter()` on borrowed collections.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `.into_par_iter()` on owned collections.
    pub trait IntoParallelIterator {
        type Iter: Iterator;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

/// Pool construction error (never produced by the stand-in).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { _threads: self.num_threads })
    }
}

/// A "pool" that runs installed closures on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    _threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let moved: Vec<i32> = v.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(moved, vec![2, 3, 4]);
    }

    #[test]
    fn pool_install_runs_closure() {
        let pool = super::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| 7), 7);
    }
}
