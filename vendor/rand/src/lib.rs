//! Offline stand-in for the `rand` crate (API subset).
//!
//! The workspace builds without network access, so the real crates.io
//! `rand` cannot be fetched. This crate supplies the trait surface the
//! workspace uses — `RngCore`, `SeedableRng`, `Rng::{gen_range, gen_bool}`
//! — with deterministic multiply-shift uniform sampling. Determinism is
//! the property the chaos harness and proptest suites rely on; bit-for-bit
//! compatibility with upstream `rand` streams is explicitly *not* a goal.

/// Core random source: everything else builds on these.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// Seeded construction. `seed_from_u64` expands a word seed with
/// SplitMix64, matching the upstream rand_core default expansion.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let n = chunk.len();
            chunk.copy_from_slice(&z.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Range types `gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0, 1]");
        // 53 uniform mantissa bits, same resolution as a uniform f64 draw.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types `gen_range` can draw uniformly. One blanket `SampleRange` impl
/// per range shape keeps type inference flowing *backwards* from the use
/// site into untyped integer literals (`ts += rng.gen_range(10..50)`),
/// exactly like upstream rand's single generic impl does.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]` (`true`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Multiply-shift bounded draw: maps a full 64-bit word onto `[0, span)`.
/// Deterministic and close enough to uniform for simulation workloads.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    ((rng.next_u64() as u128 * span) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                let off = bounded_u64(rng, span);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        let unit = ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32);
        lo + unit * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

pub mod rngs {
    //! Minimal rng implementations mirroring `rand::rngs`.

    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, solid 64-bit mixer. Stands in for StdRng.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Self { state: u64::from_le_bytes(seed) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let a: u8 = rng.gen_range(0..20);
            assert!(a < 20);
            let b = rng.gen_range(128u64..=320);
            assert!((128..=320).contains(&b));
            let c = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&c));
            let d = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&d));
            let _ = rng.gen_range(0..u64::MAX);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
