//! Cross-crate integration tests: the full platform exercised the way the
//! course used it, with answers checked against generator ground truth.

use hadoop_lab::cluster::node::ClusterSpec;
use hadoop_lab::common::config::{keys, Configuration};
use hadoop_lab::common::simtime::{SimDuration, SimTime};
use hadoop_lab::datagen::airline::AirlineGen;
use hadoop_lab::datagen::google_trace::GoogleTraceGen;
use hadoop_lab::datagen::movielens::MovieLensGen;
use hadoop_lab::datagen::yahoo_music::YahooMusicGen;
use hadoop_lab::dfs::shell::{DfsShell, LocalFs};
use hadoop_lab::mapreduce::engine::MrCluster;
use hadoop_lab::workloads::{airline, google, movielens, yahoo};

fn cluster(block_size: u64) -> MrCluster {
    let mut config = Configuration::with_defaults();
    config.set(keys::DFS_BLOCK_SIZE, block_size);
    MrCluster::new(ClusterSpec::course_hadoop(8), config).unwrap()
}

fn stage(c: &mut MrCluster, path: &str, bytes: &[u8]) {
    let dir = path.rsplit_once('/').unwrap().0;
    if !dir.is_empty() {
        c.dfs.namenode.mkdirs(dir).unwrap();
    }
    let t = c.now;
    let put = c.dfs.put(&mut c.net, t, path, bytes, None).unwrap();
    c.now = put.completed_at;
}

#[test]
fn airline_lab_on_the_cluster_matches_truth() {
    let (csv, truth) = AirlineGen::new(404).generate(30_000);
    let mut c = cluster(128 * 1024);
    stage(&mut c, "/in/2008.csv", csv.as_bytes());
    let report = c.run_job(&airline::avg_delay_combiner("/in/2008.csv", "/out")).unwrap();
    assert!(report.success);
    let out = c.read_output("/out").unwrap();
    let parsed = airline::parse_output(&out.lines().map(str::to_string).collect::<Vec<_>>());
    assert_eq!(parsed.len(), truth.per_carrier.len());
    for (carrier, &(n, s)) in &truth.per_carrier {
        let want: f64 = format!("{:.2}", s as f64 / n as f64).parse().unwrap();
        assert!((parsed[carrier] - want).abs() < 1e-9, "{carrier}");
    }
}

#[test]
fn movielens_assignment_on_the_cluster_matches_truth() {
    let data = MovieLensGen::new(500).with_sizes(400, 200).generate(8_000);
    let mut c = cluster(64 * 1024);
    stage(&mut c, "/in/ratings.dat", data.ratings.as_bytes());
    stage(&mut c, "/cache/movies.dat", data.movies.as_bytes());
    c.cache_from_dfs("/cache/movies.dat").unwrap();

    c.run_job(&movielens::most_active_user("/in/ratings.dat", "/cache/movies.dat", "/out"))
        .unwrap();
    let out = c.read_output("/out").unwrap();
    let fields: Vec<&str> = out.trim().split('\t').collect();
    let (user, count) = data.truth.most_active_user().unwrap();
    assert_eq!(fields[0].parse::<u32>().unwrap(), user);
    assert_eq!(fields[1].parse::<u64>().unwrap(), count);
    assert_eq!(fields[2], data.truth.favorite_genre(user).unwrap());
}

#[test]
fn yahoo_assignment_on_the_cluster_matches_truth() {
    let data = YahooMusicGen::new(500).generate(20_000);
    let mut c = cluster(128 * 1024);
    stage(&mut c, "/in/song_ratings.txt", data.ratings.as_bytes());
    c.register_side_file("/cache/songs.txt", data.songs.into_bytes());
    c.run_job(&yahoo::best_album("/in/song_ratings.txt", "/cache/songs.txt", "/out")).unwrap();
    let out = c.read_output("/out").unwrap();
    let (album, avg) = data.truth.best_album().unwrap();
    let fields: Vec<&str> = out.trim().split('\t').collect();
    assert_eq!(fields[0].parse::<u32>().unwrap(), album);
    assert!((fields[1].parse::<f64>().unwrap() - avg).abs() < 1e-3);
}

#[test]
fn google_trace_project_on_the_cluster_matches_truth() {
    let (log, truth) = GoogleTraceGen::new(500).with_jobs(120, 20).generate();
    let mut c = cluster(256 * 1024);
    stage(&mut c, "/in/task_events.csv", log.as_bytes());
    c.run_job(&google::worst_job("/in/task_events.csv", "/out")).unwrap();
    let out = c.read_output("/out").unwrap();
    let (j, n) = out.trim().split_once('\t').unwrap();
    let (tj, tn) = truth.worst_job().unwrap();
    assert_eq!(j.parse::<u64>().unwrap(), tj);
    assert_eq!(n.parse::<u64>().unwrap(), tn);
}

#[test]
fn shell_session_over_a_cluster_with_jobs() {
    // Students interleave `hadoop fs` commands with job runs; everything
    // shares one namespace and one virtual clock.
    let mut c = cluster(64 * 1024);
    let (csv, _) = AirlineGen::new(9).generate(2_000);
    {
        let mut local = LocalFs::new();
        local.write("2008.csv", csv.into_bytes());
        let mut shell = DfsShell { dfs: &mut c.dfs, net: &mut c.net, local: &mut local };
        shell.run(SimTime::ZERO, "-mkdir /in").unwrap();
        shell.run(SimTime::ZERO, "-put 2008.csv /in/2008.csv").unwrap();
        let ls = shell.run(SimTime::ZERO, "-ls /in").unwrap();
        assert!(ls.stdout.contains("/in/2008.csv"));
    }
    let report = c.run_job(&airline::avg_delay_plain("/in/2008.csv", "/out")).unwrap();
    assert!(report.success);
    {
        let mut local = LocalFs::new();
        let mut shell = DfsShell { dfs: &mut c.dfs, net: &mut c.net, local: &mut local };
        let fsck = shell.run(c.now, "-fsck /").unwrap();
        assert!(fsck.stdout.contains("Status: HEALTHY"), "{}", fsck.stdout);
        // Job output is part of the namespace now.
        let cat = shell.run(c.now, "-cat /out/part-r-00000").unwrap();
        assert!(cat.stdout.contains('\t'));
    }
}

#[test]
fn cluster_survives_node_loss_mid_semester() {
    // Stage data, kill a node, let re-replication heal, then run a job
    // that needs the healed blocks.
    let (csv, truth) = AirlineGen::new(31).generate(10_000);
    let mut c = cluster(64 * 1024);
    stage(&mut c, "/in/2008.csv", csv.as_bytes());
    let victim = c.dfs.file_blocks("/in/2008.csv").unwrap()[0].2[0];
    c.dfs.crash_datanode(victim);
    let mut t = c.now;
    for _ in 0..230 {
        t += SimDuration::from_secs(3);
        c.dfs.heartbeat_round(&mut c.net, t);
    }
    c.now = t;
    assert!(c.dfs.namenode.under_replicated().is_empty(), "healed");
    // The TaskTracker on the dead node is gone too in a real crash; here
    // only the DataNode died, so all 8 trackers still run maps — but none
    // may read from the dead DataNode.
    let report = c.run_job(&airline::avg_delay_combiner("/in/2008.csv", "/out")).unwrap();
    let out = c.read_output("/out").unwrap();
    let parsed = airline::parse_output(&out.lines().map(str::to_string).collect::<Vec<_>>());
    let best = truth.best_carrier().unwrap();
    let got_best = parsed.iter().min_by(|a, b| a.1.total_cmp(b.1)).map(|(c, _)| c.clone()).unwrap();
    assert_eq!(got_best, best.0);
    assert!(report.success);
}

#[test]
fn editlog_survives_namenode_restart_with_jobs_output_intact() {
    let (csv, _) = AirlineGen::new(8).generate(3_000);
    let mut c = cluster(64 * 1024);
    stage(&mut c, "/in/2008.csv", csv.as_bytes());
    c.run_job(&airline::avg_delay_plain("/in/2008.csv", "/out")).unwrap();
    let before = c.read_output("/out").unwrap();

    // Full restart: namespace rebuilt from fsimage + journal, block
    // locations recovered from block reports.
    let t = c.now;
    let r = c.dfs.restart_all(&mut c.net, t).unwrap();
    c.now = r.completed_at;
    let after = c.read_output("/out").unwrap();
    assert_eq!(before, after, "output survives a full cluster restart");
}
