//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, sizes, and seeds.

use proptest::prelude::*;

use hadoop_lab::cluster::node::ClusterSpec;
use hadoop_lab::common::config::{keys, Configuration};
use hadoop_lab::common::simtime::SimTime;
use hadoop_lab::dfs::client::Dfs;
use hadoop_lab::mapreduce::api::SideFiles;
use hadoop_lab::mapreduce::engine::MrCluster;
use hadoop_lab::mapreduce::local::LocalRunner;
use hadoop_lab::workloads::wordcount;

fn counts(lines: &[String]) -> std::collections::BTreeMap<String, u64> {
    lines
        .iter()
        .map(|l| {
            let (k, v) = l.split_once('\t').unwrap();
            (k.to_string(), v.parse().unwrap())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// DFS round-trip: any bytes, any block size, any replication that the
    /// cluster can satisfy — reads return exactly what was written.
    #[test]
    fn dfs_put_read_round_trips(
        data in proptest::collection::vec(any::<u8>(), 0..20_000),
        block_size in 64u64..4096,
        replication in 1u32..4,
        nodes in 3usize..8,
    ) {
        let spec = ClusterSpec::course_hadoop(nodes);
        let mut config = Configuration::with_defaults();
        config.set(keys::DFS_BLOCK_SIZE, block_size);
        let mut dfs = Dfs::format(&config, &spec).unwrap();
        let mut net = hadoop_lab::cluster::network::ClusterNet::new(&spec);
        dfs.namenode.mkdirs("/p").unwrap();
        let put = dfs
            .put_with_replication(&mut net, SimTime::ZERO, "/p/f", &data, None, replication)
            .unwrap();
        let got = dfs.read(&mut net, put.completed_at, "/p/f", None).unwrap();
        prop_assert_eq!(got.value, data.clone());
        // Metadata agrees with content.
        prop_assert_eq!(
            dfs.namenode.namespace().file("/p/f").unwrap().len,
            data.len() as u64
        );
        let blocks = dfs.file_blocks("/p/f").unwrap();
        prop_assert_eq!(blocks.len() as u64, (data.len() as u64).div_ceil(block_size));
        for (_, _, holders) in blocks {
            prop_assert_eq!(holders.len() as u32, replication.min(nodes as u32));
        }
    }

    /// WordCount agrees between the serial local runner and the cluster,
    /// and with a trivial reference count, for arbitrary text.
    #[test]
    fn wordcount_modes_agree(
        text in proptest::collection::vec("[a-d]{1,4}( [a-d]{1,4}){0,6}", 1..30),
        block_size in 32u64..512,
        reduces in 1usize..4,
    ) {
        let joined = format!("{}\n", text.join("\n"));
        // Reference.
        let mut expected = std::collections::BTreeMap::new();
        for w in joined.split_whitespace() {
            *expected.entry(w.to_string()).or_insert(0u64) += 1;
        }
        // Serial.
        let local = LocalRunner::serial()
            .run(
                &wordcount::wordcount("/i", "/o", reduces),
                &[("t.txt".to_string(), joined.clone().into_bytes())],
                &SideFiles::new(),
            )
            .unwrap();
        prop_assert_eq!(&counts(&local.output), &expected);
        // Cluster.
        let mut config = Configuration::with_defaults();
        config.set(keys::DFS_BLOCK_SIZE, block_size);
        let mut c = MrCluster::new(ClusterSpec::course_hadoop(4), config).unwrap();
        c.dfs.namenode.mkdirs("/in").unwrap();
        let t = c.now;
        let put = c.dfs.put(&mut c.net, t, "/in/t.txt", joined.as_bytes(), None).unwrap();
        c.now = put.completed_at;
        let job = wordcount::wordcount_combiner("/in/t.txt", "/out", reduces);
        c.run_job(&job).unwrap();
        let out: Vec<String> =
            c.read_output("/out").unwrap().lines().map(str::to_string).collect();
        prop_assert_eq!(&counts(&out), &expected);
    }

    /// Determinism: the same job on the same data costs exactly the same
    /// virtual time, every time.
    #[test]
    fn virtual_time_is_deterministic(seed in 0u64..50) {
        let run_once = || {
            let (text, _) =
                hadoop_lab::datagen::corpus::CorpusGen::new(seed).with_vocab(50).generate(2000);
            let mut config = Configuration::with_defaults();
            config.set(keys::DFS_BLOCK_SIZE, 2048u64);
            let mut c = MrCluster::new(ClusterSpec::course_hadoop(4), config).unwrap();
            c.dfs.namenode.mkdirs("/in").unwrap();
            let t = c.now;
            let put = c.dfs.put(&mut c.net, t, "/in/c.txt", text.as_bytes(), None).unwrap();
            c.now = put.completed_at;
            let report =
                c.run_job(&wordcount::wordcount("/in/c.txt", "/out", 2)).unwrap();
            (report.finished_at, report.shuffle_bytes(), report.counters)
        };
        let a = run_once();
        let b = run_once();
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }

    /// Losing any single DataNode never loses data at replication 3.
    #[test]
    fn single_node_loss_is_survivable(
        victim in 0u32..5,
        data in proptest::collection::vec(any::<u8>(), 1..5_000),
    ) {
        let spec = ClusterSpec::course_hadoop(5);
        let mut config = Configuration::with_defaults();
        config.set(keys::DFS_BLOCK_SIZE, 512u64);
        let mut dfs = Dfs::format(&config, &spec).unwrap();
        let mut net = hadoop_lab::cluster::network::ClusterNet::new(&spec);
        dfs.namenode.mkdirs("/p").unwrap();
        let put = dfs.put(&mut net, SimTime::ZERO, "/p/f", &data, None).unwrap();
        dfs.crash_datanode(hadoop_lab::common::topology::NodeId(victim));
        let got = dfs.read(&mut net, put.completed_at, "/p/f", None).unwrap();
        prop_assert_eq!(got.value, data);
    }
}
