//! Model-based test: the HBase-flavored table must behave exactly like a
//! flat `BTreeMap<(row, column), value>` under any sequence of puts,
//! deletes, flushes, compactions, and splits.

use std::collections::BTreeMap;

use proptest::prelude::*;

use hadoop_lab::cluster::network::ClusterNet;
use hadoop_lab::cluster::node::ClusterSpec;
use hadoop_lab::common::config::{keys, Configuration};
use hadoop_lab::common::simtime::SimTime;
use hadoop_lab::dfs::client::Dfs;
use hadoop_lab::hbase::HTable;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8, u8),
    Delete(u8, u8),
    Flush,
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0u8..20, 0u8..3, any::<u8>()).prop_map(|(r, c, v)| Op::Put(r, c, v)),
        3 => (0u8..20, 0u8..3).prop_map(|(r, c)| Op::Delete(r, c)),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn htable_matches_a_flat_map(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let spec = ClusterSpec::course_hadoop(4);
        let mut config = Configuration::with_defaults();
        config.set(keys::DFS_BLOCK_SIZE, 4096u64);
        let mut dfs = Dfs::format(&config, &spec).unwrap();
        let mut net = ClusterNet::new(&spec);
        let mut table = HTable::create(&mut dfs, "model").unwrap();
        table.split_threshold = 25; // force splits to happen mid-sequence
        let mut model: BTreeMap<(String, String), Vec<u8>> = BTreeMap::new();
        let mut now = SimTime::ZERO;

        for op in ops {
            match op {
                Op::Put(r, c, v) => {
                    let (row, col) = (format!("row{r:02}"), format!("col{c}"));
                    now = table.put(&mut dfs, &mut net, now, &row, &col, vec![v]).unwrap();
                    model.insert((row, col), vec![v]);
                }
                Op::Delete(r, c) => {
                    let (row, col) = (format!("row{r:02}"), format!("col{c}"));
                    now = table.delete(&mut dfs, &mut net, now, &row, &col).unwrap();
                    model.remove(&(row, col));
                }
                Op::Flush => {
                    now = table.flush_all(&mut dfs, &mut net, now).unwrap();
                }
                Op::Compact => {
                    now = table.compact_all(&mut dfs, &mut net, now).unwrap();
                }
            }
            // Point lookups agree on a sample of keys.
            for r in [0u8, 7, 19] {
                for c in 0u8..3 {
                    let (row, col) = (format!("row{r:02}"), format!("col{c}"));
                    prop_assert_eq!(
                        table.get(&row, &col),
                        model.get(&(row.clone(), col.clone())).cloned(),
                        "get({}, {})", row, col
                    );
                }
            }
        }

        // Full scan agrees exactly with the model.
        let got: Vec<((String, String), Vec<u8>)> = table
            .scan("", None)
            .into_iter()
            .map(|(r, c, v)| ((r, c), v))
            .collect();
        let want: Vec<((String, String), Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, want);
    }
}
