//! Integration tests for the administration layer — fsck/report/balancer/
//! decommission — exercised through the public facade on a cluster that is
//! also running jobs.

use hadoop_lab::cluster::network::ClusterNet;
use hadoop_lab::cluster::node::ClusterSpec;
use hadoop_lab::common::config::{keys, Configuration};
use hadoop_lab::common::simtime::SimTime;
use hadoop_lab::common::topology::NodeId;
use hadoop_lab::datagen::corpus::CorpusGen;
use hadoop_lab::dfs::admin;
use hadoop_lab::dfs::client::Dfs;
use hadoop_lab::mapreduce::engine::MrCluster;
use hadoop_lab::workloads::{cooccurrence, wordcount};

#[test]
fn cooccurrence_pairs_and_stripes_agree_on_the_cluster() {
    let mut config = Configuration::with_defaults();
    config.set(keys::DFS_BLOCK_SIZE, 32 * 1024u64);
    let mut c = MrCluster::new(ClusterSpec::course_hadoop(8), config).unwrap();
    let (text, _) = CorpusGen::new(31).with_vocab(100).generate(8_000);
    c.dfs.namenode.mkdirs("/in").unwrap();
    let t = c.now;
    let put = c.dfs.put(&mut c.net, t, "/in/c.txt", text.as_bytes(), None).unwrap();
    c.now = put.completed_at;

    let pairs_report = c.run_job(&cooccurrence::pairs("/in/c.txt", "/out/p", 3)).unwrap();
    let stripes_report = c.run_job(&cooccurrence::stripes("/in/c.txt", "/out/s", 3)).unwrap();
    let mut p: Vec<String> = c.read_output("/out/p").unwrap().lines().map(String::from).collect();
    let mut s: Vec<String> = c.read_output("/out/s").unwrap().lines().map(String::from).collect();
    p.sort();
    s.sort();
    assert_eq!(p, s, "pairs and stripes must agree");
    assert!(!p.is_empty());
    // Stripes shuffles less.
    assert!(stripes_report.shuffle_bytes() < pairs_report.shuffle_bytes());
    // Both landed in the JobTracker history.
    assert_eq!(c.history.len(), 2);
    assert!(c.history.to_string().contains("cooccurrence-pairs"));
}

#[test]
fn balancer_on_a_lopsided_cluster_preserves_readability() {
    let mut spec = ClusterSpec::course_hadoop(6);
    spec.node.disk_bytes = 4 << 20;
    let mut config = Configuration::with_defaults();
    config.set(keys::DFS_BLOCK_SIZE, 16 * 1024u64);
    config.set(keys::DFS_REPLICATION, 1);
    let mut dfs = Dfs::format(&config, &spec).unwrap();
    let mut net = ClusterNet::new(&spec);
    dfs.namenode.mkdirs("/d").unwrap();
    // Pile single-replica files onto node0.
    let mut payloads = Vec::new();
    for i in 0..10 {
        let data: Vec<u8> = (0..40_000u32).map(|x| ((x * 7 + i) % 251) as u8).collect();
        dfs.put(&mut net, SimTime::ZERO, &format!("/d/f{i}"), &data, Some(NodeId(0))).unwrap();
        payloads.push(data);
    }
    let before = admin::report(&dfs).utilization_spread();
    let result = admin::balance(&mut dfs, &mut net, SimTime::ZERO, 0.02, 500);
    assert!(result.spread_after < before, "before {before:.4} result {result:?}");
    // Every file still reads back exactly.
    for (i, want) in payloads.iter().enumerate() {
        let got = dfs.read(&mut net, result.completed_at, &format!("/d/f{i}"), None).unwrap();
        assert_eq!(&got.value, want, "/d/f{i}");
    }
}

#[test]
fn decommission_then_run_a_job_on_the_survivors() {
    let mut config = Configuration::with_defaults();
    config.set(keys::DFS_BLOCK_SIZE, 16 * 1024u64);
    let mut c = MrCluster::new(ClusterSpec::course_hadoop(6), config).unwrap();
    let (text, truth) = CorpusGen::new(5).with_vocab(60).generate(4_000);
    c.dfs.namenode.mkdirs("/in").unwrap();
    let t = c.now;
    let put = c.dfs.put(&mut c.net, t, "/in/c.txt", text.as_bytes(), None).unwrap();
    c.now = put.completed_at;

    // Drain node 2 completely, then retire it.
    let t = c.now;
    let done = admin::decommission_node(&mut c.dfs, &mut c.net, t, NodeId(2)).unwrap();
    c.now = done.completed_at;
    assert!(!c.dfs.datanode(NodeId(2)).unwrap().alive);

    // The cluster still answers correctly without the retired node.
    c.run_job(&wordcount::wordcount_combiner("/in/c.txt", "/out", 2)).unwrap();
    let out = c.read_output("/out").unwrap();
    let mut total = 0u64;
    for line in out.lines() {
        let (w, n) = line.split_once('\t').unwrap();
        assert_eq!(truth[w], n.parse::<u64>().unwrap(), "{w}");
        total += truth[w];
    }
    assert_eq!(total, 4_000);
}

#[test]
fn dfsadmin_report_tracks_a_session() {
    let mut config = Configuration::with_defaults();
    config.set(keys::DFS_BLOCK_SIZE, 8 * 1024u64);
    let mut c = MrCluster::new(ClusterSpec::course_hadoop(4), config).unwrap();
    let before = admin::report(&c.dfs);
    assert_eq!(before.nodes.iter().map(|n| n.blocks).sum::<usize>(), 0);
    assert!(!before.safemode);

    let (text, _) = CorpusGen::new(1).with_vocab(40).generate(3_000);
    c.dfs.namenode.mkdirs("/in").unwrap();
    let t = c.now;
    let put = c.dfs.put(&mut c.net, t, "/in/c.txt", text.as_bytes(), None).unwrap();
    c.now = put.completed_at;
    c.run_job(&wordcount::wordcount("/in/c.txt", "/out", 1)).unwrap();

    let after = admin::report(&c.dfs);
    let blocks: usize = after.nodes.iter().map(|n| n.blocks).sum();
    assert!(blocks > 3 * 3, "input + output replicas on disk: {blocks}");
    assert_eq!(after.under_replicated, 0);
    assert_eq!(after.missing, 0);
    assert!(after.to_string().contains("In Service"));
}

#[test]
fn total_order_sort_holds_on_the_cluster_too() {
    // The engine path for custom partitioners: reduce outputs are
    // part-r-NNNNN files; with the range partitioner, reading them in
    // partition order yields a globally sorted word list.
    use hadoop_lab::workloads::terasort;

    let mut config = Configuration::with_defaults();
    config.set(keys::DFS_BLOCK_SIZE, 16 * 1024u64);
    let mut c = MrCluster::new(ClusterSpec::course_hadoop(6), config).unwrap();
    let (text, truth) = CorpusGen::new(77).with_vocab(250).generate(10_000);
    c.dfs.namenode.mkdirs("/in").unwrap();
    let t = c.now;
    let put = c.dfs.put(&mut c.net, t, "/in/c.txt", text.as_bytes(), None).unwrap();
    c.now = put.completed_at;

    let cuts = terasort::sample_cut_points(&text, 4);
    let job = terasort::sorted_wordcount("/in/c.txt", "/out", cuts);
    let report = c.run_job(&job).unwrap();
    assert!(report.success);

    // read_output concatenates part files in partition order.
    let out = c.read_output("/out").unwrap();
    let keys_out: Vec<&str> = out.lines().map(|l| l.split_once('\t').unwrap().0).collect();
    assert_eq!(keys_out.len(), truth.len());
    assert!(
        keys_out.windows(2).all(|w| w[0] < w[1]),
        "global sort must hold across part-file boundaries"
    );
    for line in out.lines() {
        let (k, v) = line.split_once('\t').unwrap();
        assert_eq!(truth[k], v.parse::<u64>().unwrap(), "{k}");
    }
}
