//! Asserted chaos scenarios: the paper's operational war stories, driven
//! end-to-end with every step checked (the `meltdown_drill` example shows
//! the same stories; these tests pin them down).

use hadoop_lab::chaos::{ChaosRunner, ScenarioPack};
use hadoop_lab::cluster::node::ClusterSpec;
use hadoop_lab::common::config::keys;
use hadoop_lab::common::prelude::*;
use hadoop_lab::datagen::CorpusGen;
use hadoop_lab::dfs::editlog::EditLog;
use hadoop_lab::dfs::fsck::fsck;
use hadoop_lab::dfs::namespace::Namespace;
use hadoop_lab::mapreduce::MrCluster;
use hadoop_lab::workloads::wordcount::wordcount;

fn chaos_cluster(extension_secs: u64) -> MrCluster {
    let spec = ClusterSpec::course_hadoop(5);
    let mut config = Configuration::with_defaults();
    // Small blocks for a real block map, short dead-node timeout (60 s)
    // so the drill fits in a 90 s protocol window.
    config.set(keys::DFS_BLOCK_SIZE, 1024u64);
    config.set(keys::DFS_HEARTBEAT_DEAD_AFTER, 20u64);
    config.set(keys::DFS_SAFEMODE_EXTENSION_SECS, extension_secs);
    MrCluster::new(spec, config).unwrap()
}

fn stage_corpus(cluster: &mut MrCluster, seed: u64, words: usize) -> String {
    cluster.dfs.namenode.mkdirs("/in").unwrap();
    let (corpus, _) = CorpusGen::new(seed).generate(words);
    let t = cluster.now;
    let put =
        cluster.dfs.put(&mut cluster.net, t, "/in/corpus.txt", corpus.as_bytes(), None).unwrap();
    cluster.now = put.completed_at;
    corpus
}

/// Fall 2012: a heap-leaking student job OOMs the TaskTracker JVM *and*
/// the colocated DataNode; ten minutes later the NameNode declares the
/// node dead and re-replication quietly restores 3x.
#[test]
fn meltdown_drill_crashes_node_and_rereplicates() {
    let mut cluster = chaos_cluster(30);
    stage_corpus(&mut cluster, 42, 2000);

    // Only node 2's daemon accumulates the leak: one student's bad JVM.
    let victim = NodeId(2);
    cluster.tracker_mut(victim).unwrap().health.heap.leak_per_buggy_task = 900 * ByteSize::MIB;

    let mut job = wordcount("/in/corpus.txt", "/out/melt", 2);
    job.conf.leaks_memory = true;
    let result = cluster.run_job(&job);

    // Step 1: the OOM killed the TaskTracker and its colocated DataNode.
    let tracker = cluster.tracker(victim).unwrap();
    assert!(!tracker.health.alive, "leaky tasks must OOM the victim tracker");
    assert!(tracker.health.crashes >= 1);
    assert!(!cluster.dfs.datanode(victim).unwrap().alive, "colocated DataNode dies with it");
    // The job either survived on the other trackers or failed cleanly.
    if let Err(e) = result {
        assert!(
            matches!(e, HlError::JobFailed(_) | HlError::TaskFailed(_) | HlError::DaemonDown(_)),
            "unclean failure: {e}"
        );
    }

    // Step 2: the NameNode still lists the dead node as a replica holder —
    // heartbeats have not timed out yet.
    let held: Vec<_> = cluster
        .dfs
        .namenode
        .block_manifest()
        .into_iter()
        .filter(|&(id, _, _)| cluster.dfs.namenode.block_locations(id).contains(&victim))
        .collect();
    assert!(!held.is_empty(), "victim held replicas when it died");

    // Step 3: drive the protocol past the dead-node timeout. The sweep
    // declares the node dead and the replication monitor restores 3x on
    // the survivors.
    let from = cluster.now;
    let until = from + SimDuration::from_secs(90);
    cluster.dfs.run_protocol(&mut cluster.net, from, until);
    cluster.now = until;

    for (id, _, expected) in cluster.dfs.namenode.block_manifest() {
        let locations = cluster.dfs.namenode.block_locations(id);
        assert_eq!(locations.len() as u32, expected, "blk_{} not restored", id.0);
        assert!(!locations.contains(&victim), "blk_{} still on the dead node", id.0);
    }
    let report = fsck(&cluster.dfs, "/").unwrap();
    assert!(report.is_healthy());
    assert_eq!(report.under_replicated, 0);
    assert_eq!(report.live_datanodes, 4);
}

/// The NameNode crashes mid-workload. Its edit log — serialized,
/// deserialized, and replayed into an empty namespace — reproduces the
/// exact pre-crash tree and block map, and the restarted NameNode sits
/// in safe mode until block reports stream back in.
#[test]
fn editlog_replay_recovers_namespace_and_block_map() {
    let mut cluster = chaos_cluster(0);
    let corpus = stage_corpus(&mut cluster, 7, 800);

    // A busy life before the crash: a completed job, a scratch file
    // created and deleted.
    cluster.run_job(&wordcount("/in/corpus.txt", "/out/wc", 2)).unwrap();
    cluster.dfs.namenode.mkdirs("/scratch").unwrap();
    let t = cluster.now;
    let put = cluster.dfs.put(&mut cluster.net, t, "/scratch/tmp", b"temporary\n", None).unwrap();
    cluster.now = put.completed_at;
    let cmds = cluster.dfs.namenode.delete("/scratch/tmp", false).unwrap();
    let now = cluster.now;
    cluster.dfs.apply_commands(&mut cluster.net, now, &cmds);

    let ns_before = cluster.dfs.namenode.namespace().clone();
    let manifest_before = cluster.dfs.namenode.block_manifest();

    // The journal alone reconstructs the tree: serialize, deserialize,
    // replay into an empty namespace, compare.
    let journal = cluster.dfs.namenode.editlog.serialize();
    let replayed = EditLog::deserialize(&journal).unwrap();
    let mut fresh = Namespace::new();
    replayed.replay(&mut fresh).unwrap();
    assert_eq!(fresh, ns_before, "journal replay must reproduce the live namespace");

    // Cold restart: namespace and block map survive; replica locations
    // are forgotten and must be re-learned from block reports.
    let now = cluster.now;
    cluster.dfs.namenode.restart(now).unwrap();
    assert!(cluster.dfs.namenode.safemode.is_on());
    assert_eq!(cluster.dfs.namenode.namespace(), &ns_before);
    assert_eq!(cluster.dfs.namenode.block_manifest(), manifest_before);
    assert!(manifest_before.iter().all(|&(id, _, _)| cluster
        .dfs
        .namenode
        .block_locations(id)
        .is_empty()));
    assert!(
        matches!(cluster.dfs.namenode.mkdirs("/nope"), Err(HlError::SafeMode(_))),
        "mutations must be refused in safe mode"
    );

    // Safe mode exits only once block reports account for the blocks.
    let mut exited_after = None;
    for (i, node) in cluster.dfs.datanode_ids().into_iter().enumerate() {
        assert!(
            cluster.dfs.namenode.safemode.is_on(),
            "safe mode must hold until enough reports arrive"
        );
        let (free, report) = {
            let dn = cluster.dfs.datanode(node).unwrap();
            (dn.free_bytes(), dn.block_report())
        };
        let t = now + SimDuration::from_secs(i as u64 + 1);
        cluster.dfs.namenode.register_datanode(t, node, free);
        if cluster.dfs.namenode.process_block_report(t, node, &report) {
            exited_after = Some(i + 1);
            break;
        }
    }
    let reports = exited_after.expect("safe mode exits after block reports");
    assert!(reports >= 2, "one DataNode cannot account for a 5-node block map");
    assert!(!cluster.dfs.namenode.safemode.is_on());

    // The recovered cluster serves the old bytes and runs new jobs.
    let t = cluster.now;
    let got = cluster.dfs.read(&mut cluster.net, t, "/in/corpus.txt", None).unwrap();
    assert_eq!(got.value, corpus.as_bytes());
    let report = cluster.run_job(&wordcount("/in/corpus.txt", "/out/wc2", 1)).unwrap();
    assert!(report.success);
}

/// The chaos harness itself, through the facade: one seed per pack runs
/// clean, and a replay reproduces the exact trace hash.
#[test]
fn chaos_packs_run_clean_and_replay_identically() {
    for pack in ScenarioPack::ALL {
        let first = ChaosRunner::run(pack, 1).unwrap();
        assert!(first.ok(), "{pack} seed 1 violated: {:?}", first.violations);
        let again = ChaosRunner::run(pack, 1).unwrap();
        assert_eq!(first.trace_hash, again.trace_hash, "{pack} seed 1 must replay");
    }
}
