//! # hadoop-lab
//!
//! Facade crate for the HadoopLab workspace: a from-scratch, laptop-scale
//! reproduction of the Hadoop 1.x teaching platform described in
//! *Teaching HDFS/MapReduce Systems Concepts to Undergraduates*
//! (Ngo, Apon & Duffy, Clemson University, 2014).
//!
//! The individual subsystems live in the `hl-*` crates; this crate
//! re-exports them under stable module names so examples, integration
//! tests, and downstream users have a single dependency:
//!
//! * [`common`] — configuration, Writable serialization, counters, sim time
//! * [`cluster`] — discrete-event cluster simulator + PBS-like batch scheduler
//! * [`dfs`] — the HDFS analog (NameNode, DataNodes, replication, fsck)
//! * [`hbase`] — an HBase-flavored table store over the DFS (the
//!   ecosystem lecture, runnable)
//! * [`mapreduce`] — the MRv1 analog (JobTracker, TaskTrackers, shuffle)
//! * [`datagen`] — synthetic stand-ins for the course datasets
//! * [`workloads`] — the lecture examples and assignment solutions
//! * [`provision`] — the myHadoop-style dynamic cluster provisioner
//! * [`core`] — experiment drivers for every table/figure + course model
//! * [`chaos`] — deterministic fault-injection harness + invariant oracles
//!
//! # Quickstart
//!
//! ```
//! use hadoop_lab::mapreduce::engine::MrCluster;
//! use hadoop_lab::workloads::wordcount;
//!
//! # fn main() -> hadoop_lab::common::error::Result<()> {
//! // The paper's 8-node course cluster (64 MB blocks, 3x replication).
//! let mut cluster = MrCluster::course_default()?;
//!
//! // Stage a file into HDFS (bytes are real, time is virtual).
//! cluster.dfs.namenode.mkdirs("/user/student")?;
//! let t = cluster.now;
//! let put = cluster.dfs.put(&mut cluster.net, t, "/user/student/in.txt",
//!                           b"so shaken as we are so wan with care\n", None)?;
//! cluster.now = put.completed_at;
//!
//! // Run WordCount with the reducer as a combiner.
//! let job = wordcount::wordcount_combiner("/user/student/in.txt", "/user/student/out", 1);
//! let report = cluster.run_job(&job)?;
//! assert!(report.success);
//!
//! let output = cluster.read_output("/user/student/out")?;
//! assert!(output.contains("shaken\t1"));
//! # Ok(())
//! # }
//! ```

pub use hl_chaos as chaos;
pub use hl_cluster as cluster;
pub use hl_common as common;
pub use hl_core as core;
pub use hl_datagen as datagen;
pub use hl_dfs as dfs;
pub use hl_hbase as hbase;
pub use hl_mapreduce as mapreduce;
pub use hl_metrics as metrics;
pub use hl_provision as provision;
pub use hl_workloads as workloads;
